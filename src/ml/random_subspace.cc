#include "ml/random_subspace.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/matrix.hh"
#include "common/worker_pool.hh"
#include "ml/crossval.hh"

namespace xpro
{

std::vector<double>
RandomSubspace::project(RowView full_row,
                        const std::vector<size_t> &indices)
{
    std::vector<double> out;
    out.reserve(indices.size());
    for (size_t idx : indices) {
        xproAssert(idx < full_row.size(),
                   "feature index %zu out of range", idx);
        out.push_back(full_row[idx]);
    }
    return out;
}

FlatMatrix
RandomSubspace::projectRows(const FlatMatrix &full_rows,
                            const std::vector<size_t> &indices)
{
    for (size_t idx : indices) {
        xproAssert(idx < full_rows.cols(),
                   "feature index %zu out of range", idx);
    }
    FlatMatrix out(full_rows.size(), indices.size());
    for (size_t i = 0; i < full_rows.size(); ++i) {
        const double *src = full_rows.rowData(i);
        double *dst = out.rowData(i);
        for (size_t c = 0; c < indices.size(); ++c)
            dst[c] = src[indices[c]];
    }
    return out;
}

RandomSubspace
RandomSubspace::train(const LabeledData &data,
                      const RandomSubspaceConfig &config)
{
    xproAssert(config.candidates > 0, "need at least one candidate");
    xproAssert(config.keepFraction > 0.0 && config.keepFraction <= 1.0,
               "keep fraction %f out of (0,1]", config.keepFraction);
    const size_t pool = data.dimension();
    xproAssert(config.subspaceDimension <= pool,
               "subspace dimension %zu exceeds pool %zu",
               config.subspaceDimension, pool);

    Rng rng(config.seed);

    // Hold out a validation part of the training data for candidate
    // selection so accuracies are not measured on the fit set.
    const Split split = stratifiedSplit(data.labels, 0.8, rng);
    const LabeledData fit_set = subset(data, split.trainIndices);
    const LabeledData val_set = subset(data, split.testIndices);

    // Draw every candidate subspace up front from the single RNG
    // stream; the parallel section below consumes no randomness, so
    // worker scheduling cannot perturb the draws.
    std::vector<std::vector<size_t>> subspaces(config.candidates);
    for (size_t c = 0; c < config.candidates; ++c) {
        subspaces[c] =
            rng.sampleWithoutReplacement(pool, config.subspaceDimension);
        std::sort(subspaces[c].begin(), subspaces[c].end());
    }

    // Fan the candidate trainings out over the pool; slot c of the
    // result is always candidate c, so the outcome is identical for
    // any worker count.
    WorkerPool workers(resolveWorkerCount(config.workers));
    std::vector<BaseClassifier> candidates =
        workers.map<BaseClassifier>(
            config.candidates, [&](size_t c) {
                BaseClassifier base;
                base.featureIndices = subspaces[c];

                LabeledData projected;
                projected.labels = fit_set.labels;
                projected.rows =
                    projectRows(fit_set.rows, base.featureIndices);
                base.model = Svm::train(projected, config.svm);

                if (val_set.size() > 0) {
                    LabeledData val_projected;
                    val_projected.labels = val_set.labels;
                    val_projected.rows = projectRows(
                        val_set.rows, base.featureIndices);
                    base.validationAccuracy =
                        base.model.accuracy(val_projected);
                } else {
                    base.validationAccuracy = 0.5;
                }
                return base;
            });

    // Keep the top fraction by validation accuracy.
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::lround(
               config.keepFraction *
               static_cast<double>(config.candidates))));
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const BaseClassifier &a, const BaseClassifier &b) {
                         return a.validationAccuracy >
                                b.validationAccuracy;
                     });
    candidates.resize(std::min(keep, candidates.size()));

    RandomSubspace ensemble;
    ensemble._bases = std::move(candidates);

    // Least-squares voting weights: regress the +-1 label on the
    // base decision signs over the whole training set (weighted
    // voting trained by least squares, paper Section 4.4). Votes
    // come from the batched inference path, one column per base.
    const size_t members = ensemble._bases.size();
    Matrix design(data.size(), members + 1);
    Matrix target(data.size(), 1);
    for (size_t m = 0; m < members; ++m) {
        const BaseClassifier &base = ensemble._bases[m];
        const std::vector<int> votes = base.model.predictBatch(
            projectRows(data.rows, base.featureIndices));
        for (size_t i = 0; i < data.size(); ++i)
            design(i, m) = static_cast<double>(votes[i]);
    }
    for (size_t i = 0; i < data.size(); ++i) {
        design(i, members) = 1.0; // bias column
        target(i, 0) = static_cast<double>(data.labels[i]);
    }
    const Matrix weights =
        Matrix::leastSquares(design, target, config.fusionRidge);
    ensemble._weights.resize(members);
    for (size_t m = 0; m < members; ++m)
        ensemble._weights[m] = weights(m, 0);
    ensemble._weightBias = weights(members, 0);
    return ensemble;
}

double
RandomSubspace::score(RowView full_row) const
{
    xproAssert(!_bases.empty(), "ensemble not trained");
    double acc = _weightBias;
    for (size_t m = 0; m < _bases.size(); ++m) {
        const int vote = _bases[m].model.predict(
            project(full_row, _bases[m].featureIndices));
        acc += _weights[m] * static_cast<double>(vote);
    }
    return acc;
}

int
RandomSubspace::predict(RowView full_row) const
{
    return score(full_row) >= 0.0 ? 1 : -1;
}

std::vector<double>
RandomSubspace::scoreBatch(const FlatMatrix &full_rows) const
{
    xproAssert(!_bases.empty(), "ensemble not trained");
    std::vector<double> scores(full_rows.size(), 0.0);
    for (size_t i = 0; i < scores.size(); ++i)
        scores[i] = _weightBias;
    // One batched projection + kernel block per base instead of one
    // heap-allocated projection per (sample, base) pair.
    for (size_t m = 0; m < _bases.size(); ++m) {
        const std::vector<int> votes = _bases[m].model.predictBatch(
            projectRows(full_rows, _bases[m].featureIndices));
        for (size_t i = 0; i < scores.size(); ++i)
            scores[i] +=
                _weights[m] * static_cast<double>(votes[i]);
    }
    return scores;
}

std::vector<int>
RandomSubspace::predictBatch(const FlatMatrix &full_rows) const
{
    const std::vector<double> scores = scoreBatch(full_rows);
    std::vector<int> out(scores.size());
    for (size_t i = 0; i < scores.size(); ++i)
        out[i] = scores[i] >= 0.0 ? 1 : -1;
    return out;
}

double
RandomSubspace::accuracy(const LabeledData &data) const
{
    xproAssert(data.size() > 0, "accuracy on empty dataset");
    const std::vector<int> predicted = predictBatch(data.rows);
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i)
        correct += predicted[i] == data.labels[i];
    return static_cast<double>(correct) /
           static_cast<double>(data.size());
}

std::vector<size_t>
RandomSubspace::usedFeatureIndices() const
{
    std::set<size_t> used;
    for (const BaseClassifier &base : _bases)
        used.insert(base.featureIndices.begin(),
                    base.featureIndices.end());
    return {used.begin(), used.end()};
}

} // namespace xpro
