#include "ml/metrics.hh"

#include "common/logging.hh"

namespace xpro
{

double
Confusion::accuracy() const
{
    const size_t n = total();
    if (n == 0)
        return 0.0;
    return static_cast<double>(truePositives + trueNegatives) /
           static_cast<double>(n);
}

double
Confusion::precision() const
{
    const size_t denom = truePositives + falsePositives;
    if (denom == 0)
        return 0.0;
    return static_cast<double>(truePositives) /
           static_cast<double>(denom);
}

double
Confusion::recall() const
{
    const size_t denom = truePositives + falseNegatives;
    if (denom == 0)
        return 0.0;
    return static_cast<double>(truePositives) /
           static_cast<double>(denom);
}

double
Confusion::f1() const
{
    const double p = precision();
    const double r = recall();
    if (p + r < 1e-12)
        return 0.0;
    return 2.0 * p * r / (p + r);
}

Confusion
confusionMatrix(const std::vector<int> &predicted,
                const std::vector<int> &actual)
{
    xproAssert(predicted.size() == actual.size(),
               "prediction/label count mismatch");
    Confusion c;
    for (size_t i = 0; i < predicted.size(); ++i) {
        if (actual[i] == 1) {
            if (predicted[i] == 1)
                ++c.truePositives;
            else
                ++c.falseNegatives;
        } else {
            if (predicted[i] == 1)
                ++c.falsePositives;
            else
                ++c.trueNegatives;
        }
    }
    return c;
}

double
accuracyScore(const std::vector<int> &predicted,
              const std::vector<int> &actual)
{
    return confusionMatrix(predicted, actual).accuracy();
}

} // namespace xpro
