/**
 * @file
 * Classification quality metrics for binary +-1 labels.
 */

#ifndef XPRO_ML_METRICS_HH
#define XPRO_ML_METRICS_HH

#include <cstddef>
#include <vector>

namespace xpro
{

/** 2x2 confusion counts for binary classification. */
struct Confusion
{
    size_t truePositives = 0;
    size_t trueNegatives = 0;
    size_t falsePositives = 0;
    size_t falseNegatives = 0;

    size_t
    total() const
    {
        return truePositives + trueNegatives + falsePositives +
               falseNegatives;
    }

    double accuracy() const;
    double precision() const;
    double recall() const;
    double f1() const;
};

/**
 * Tabulate the confusion matrix of predicted vs. true labels
 * (both in {-1, +1}; +1 is "positive").
 */
Confusion confusionMatrix(const std::vector<int> &predicted,
                          const std::vector<int> &actual);

/** Fraction of agreeing entries. */
double accuracyScore(const std::vector<int> &predicted,
                     const std::vector<int> &actual);

} // namespace xpro

#endif // XPRO_ML_METRICS_HH
