/**
 * @file
 * Multi-classification extension (paper Section 5.7): "if
 * multi-classification is needed, we can simply add more base
 * classifiers that extend only the topology of generic
 * classification; the rest of the proposed methodology can be
 * applied directly."
 *
 * Implemented as one-vs-rest: one random-subspace ensemble per
 * class, each voting "this class vs. everything else"; prediction
 * takes the class with the highest fused score. The XPro topology
 * builder maps every per-class ensemble to additional SVM and fusion
 * cells plus a final argmax cell.
 */

#ifndef XPRO_ML_MULTICLASS_HH
#define XPRO_ML_MULTICLASS_HH

#include <cstddef>
#include <vector>

#include "ml/random_subspace.hh"

namespace xpro
{

/** Multi-class dataset: flat row-major features plus labels in [0, K). */
struct MultiClassData
{
    FlatMatrix rows;
    std::vector<size_t> labels;
    size_t classCount = 0;

    size_t size() const { return rows.size(); }
    size_t dimension() const { return rows.cols(); }
};

/** One-vs-rest ensemble of random-subspace classifiers. */
class MultiClassSubspace
{
  public:
    /**
     * Train on @p data; each class gets its own one-vs-rest
     * ensemble built with @p config (seeds are decorrelated per
     * class).
     */
    static MultiClassSubspace train(const MultiClassData &data,
                                    const RandomSubspaceConfig &config);

    /** Predicted class in [0, classCount). */
    size_t predict(RowView full_row) const;

    /** Per-class fused scores (argmax = prediction). */
    std::vector<double> scores(RowView full_row) const;

    /** Predicted classes for every row, batch-evaluated. */
    std::vector<size_t> predictBatch(const FlatMatrix &full_rows) const;

    /** Fraction of correct predictions. */
    double accuracy(const MultiClassData &data) const;

    size_t classCount() const { return _perClass.size(); }

    /** The one-vs-rest ensemble for @p cls. */
    const RandomSubspace &
    classEnsemble(size_t cls) const
    {
        return _perClass[cls];
    }

    /** Union of feature-pool indices used by every class ensemble. */
    std::vector<size_t> usedFeatureIndices() const;

  private:
    std::vector<RandomSubspace> _perClass;
};

} // namespace xpro

#endif // XPRO_ML_MULTICLASS_HH
