/**
 * @file
 * Random subspace ensemble classifier (paper Sections 2.1 and 4.4).
 *
 * Base SVMs are trained on random 12-feature subsets of the
 * 48-feature pool; the best candidates by validation accuracy are
 * kept (the paper keeps the top 10% of 100 candidates) and fused by
 * a weighted voting scheme whose weights are trained with least
 * squares. The set of features the surviving base classifiers
 * actually consume determines which functional cells exist in the
 * XPro topology.
 *
 * Candidate training is embarrassingly parallel and fans out over a
 * WorkerPool. Every random draw (the train/validation split and all
 * candidate subspaces) happens serially before the fan-out, each
 * candidate trains from its own pre-drawn subspace with no shared
 * mutable state, and results are collected by candidate index — so
 * the trained ensemble, vote weights and accuracies are bit-for-bit
 * identical at any worker count.
 */

#ifndef XPRO_ML_RANDOM_SUBSPACE_HH
#define XPRO_ML_RANDOM_SUBSPACE_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"
#include "ml/svm.hh"

namespace xpro
{

/** Random subspace training hyper-parameters. */
struct RandomSubspaceConfig
{
    /** Features drawn per base classifier (paper: 12). */
    size_t subspaceDimension = 12;
    /** Candidate base classifiers trained (paper: 100). */
    size_t candidates = 100;
    /** Fraction of candidates kept by accuracy (paper: top 10%). */
    double keepFraction = 0.1;
    /** SVM configuration shared by all base classifiers. */
    SvmConfig svm;
    /** Ridge regularizer for the least-squares voting weights. */
    double fusionRidge = 1e-6;
    /** RNG seed for subspace sampling. */
    uint64_t seed = 1;
    /**
     * Worker threads for candidate training (0 = one per hardware
     * thread, 1 = inline). The result is identical at any setting.
     */
    size_t workers = 1;
};

/** One trained member of the ensemble. */
struct BaseClassifier
{
    /** Indices into the full feature pool this member consumes. */
    std::vector<size_t> featureIndices;
    Svm model;
    /** Validation accuracy used for candidate selection. */
    double validationAccuracy = 0.0;
};

/** Trained random subspace ensemble with weighted-voting fusion. */
class RandomSubspace
{
  public:
    /**
     * Train on full-pool feature rows with +-1 labels.
     * @param data Rows over the complete feature pool.
     * @param config Ensemble hyper-parameters.
     */
    static RandomSubspace train(const LabeledData &data,
                                const RandomSubspaceConfig &config);

    /** Fused score; positive means class +1. */
    double score(RowView full_row) const;

    /** Predicted label in {-1, +1}. */
    int predict(RowView full_row) const;

    /** Fused scores for every full-pool row, batch-evaluated. */
    std::vector<double> scoreBatch(const FlatMatrix &full_rows) const;

    /** Predicted labels for every full-pool row. */
    std::vector<int> predictBatch(const FlatMatrix &full_rows) const;

    /** Accuracy over a full-pool dataset. */
    double accuracy(const LabeledData &data) const;

    const std::vector<BaseClassifier> &bases() const { return _bases; }
    const std::vector<double> &fusionWeights() const { return _weights; }
    /** Bias term of the least-squares voting combiner. */
    double fusionBias() const { return _weightBias; }

    /** Union of feature-pool indices used by surviving bases. */
    std::vector<size_t> usedFeatureIndices() const;

    /** Project a full-pool row onto a base's subspace. */
    static std::vector<double>
    project(RowView full_row, const std::vector<size_t> &indices);

    /** Column-gather a whole dataset onto a subspace. */
    static FlatMatrix
    projectRows(const FlatMatrix &full_rows,
                const std::vector<size_t> &indices);

  private:
    std::vector<BaseClassifier> _bases;
    std::vector<double> _weights;
    double _weightBias = 0.0;
};

} // namespace xpro

#endif // XPRO_ML_RANDOM_SUBSPACE_HH
