/**
 * @file
 * Random subspace ensemble classifier (paper Sections 2.1 and 4.4).
 *
 * Base SVMs are trained on random 12-feature subsets of the
 * 48-feature pool; the best candidates by validation accuracy are
 * kept (the paper keeps the top 10% of 100 candidates) and fused by
 * a weighted voting scheme whose weights are trained with least
 * squares. The set of features the surviving base classifiers
 * actually consume determines which functional cells exist in the
 * XPro topology.
 */

#ifndef XPRO_ML_RANDOM_SUBSPACE_HH
#define XPRO_ML_RANDOM_SUBSPACE_HH

#include <cstddef>
#include <vector>

#include "common/random.hh"
#include "ml/svm.hh"

namespace xpro
{

/** Random subspace training hyper-parameters. */
struct RandomSubspaceConfig
{
    /** Features drawn per base classifier (paper: 12). */
    size_t subspaceDimension = 12;
    /** Candidate base classifiers trained (paper: 100). */
    size_t candidates = 100;
    /** Fraction of candidates kept by accuracy (paper: top 10%). */
    double keepFraction = 0.1;
    /** SVM configuration shared by all base classifiers. */
    SvmConfig svm;
    /** Ridge regularizer for the least-squares voting weights. */
    double fusionRidge = 1e-6;
    /** RNG seed for subspace sampling. */
    uint64_t seed = 1;
};

/** One trained member of the ensemble. */
struct BaseClassifier
{
    /** Indices into the full feature pool this member consumes. */
    std::vector<size_t> featureIndices;
    Svm model;
    /** Validation accuracy used for candidate selection. */
    double validationAccuracy = 0.0;
};

/** Trained random subspace ensemble with weighted-voting fusion. */
class RandomSubspace
{
  public:
    /**
     * Train on full-pool feature rows with +-1 labels.
     * @param data Rows over the complete feature pool.
     * @param config Ensemble hyper-parameters.
     */
    static RandomSubspace train(const LabeledData &data,
                                const RandomSubspaceConfig &config);

    /** Fused score; positive means class +1. */
    double score(const std::vector<double> &full_row) const;

    /** Predicted label in {-1, +1}. */
    int predict(const std::vector<double> &full_row) const;

    /** Accuracy over a full-pool dataset. */
    double accuracy(const LabeledData &data) const;

    const std::vector<BaseClassifier> &bases() const { return _bases; }
    const std::vector<double> &fusionWeights() const { return _weights; }
    /** Bias term of the least-squares voting combiner. */
    double fusionBias() const { return _weightBias; }

    /** Union of feature-pool indices used by surviving bases. */
    std::vector<size_t> usedFeatureIndices() const;

  private:
    /** Project a full-pool row onto a base's subspace. */
    static std::vector<double>
    project(const std::vector<double> &full_row,
            const std::vector<size_t> &indices);

    std::vector<BaseClassifier> _bases;
    std::vector<double> _weights;
    double _weightBias = 0.0;
};

} // namespace xpro

#endif // XPRO_ML_RANDOM_SUBSPACE_HH
