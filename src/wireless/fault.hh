/**
 * @file
 * Stochastic wireless fault injection (paper Section 5.7, taken past
 * the expectation-only lossy channel of wireless/link).
 *
 * The ChannelModel folds an i.i.d. bit error rate into *expected*
 * transfer costs, which keeps the Automatic XPro Generator's min-cut
 * exact in expectation but never actually drops a packet: no retry,
 * timeout or outage path is ever exercised. Real BSN links lose
 * packets in bursts (body shadowing, interference) and disconnect
 * outright. This header provides the event-level counterpart:
 *
 *  - GilbertElliottParams: the classic two-state (Good/Bad) Markov
 *    burst-loss model; per-packet loss and state-flip draws come
 *    from a seeded Rng, so a fixed seed reproduces the exact fault
 *    sequence run-to-run.
 *  - ArqConfig: bounded stop-and-wait ARQ (max retries, ACK timeout,
 *    exponential backoff) driven by the simulators in sim/ and
 *    fleet/.
 *  - OutageWindow: scripted intervals during which every packet is
 *    lost, for deterministic disconnection experiments.
 *  - FaultProfile: the bundle of all of the above plus the outage
 *    detector's threshold and recovery-probe cadence, with named
 *    presets for the CLI.
 *  - LossProcess: the seeded per-packet draw engine.
 *
 * A disabled profile injects nothing: the simulators bypass this
 * machinery entirely and reproduce the ideal/expectation behaviour
 * bit for bit (a tested invariant).
 */

#ifndef XPRO_WIRELESS_FAULT_HH
#define XPRO_WIRELESS_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.hh"
#include "common/units.hh"

namespace xpro
{

/**
 * Two-state Gilbert-Elliott burst-loss parameters. The chain
 * advances once per offered packet: a loss draw in the current
 * state, then a state-flip draw. Mean burst length in packets is
 * 1 / pBadToGood.
 */
struct GilbertElliottParams
{
    /** Per-packet loss probability in the Good state. */
    double lossGood = 0.0;
    /** Per-packet loss probability in the Bad state. */
    double lossBad = 1.0;
    /** Per-packet probability of entering the Bad state. */
    double pGoodToBad = 0.0;
    /** Per-packet probability of leaving the Bad state. */
    double pBadToGood = 1.0;
};

/** Bounded stop-and-wait ARQ parameters. */
struct ArqConfig
{
    /** Retries after the first attempt; the packet is abandoned
     *  once 1 + maxRetries attempts have all failed. */
    size_t maxRetries = 5;
    /** Wait for the missing ACK after a failed attempt. */
    Time ackTimeout = Time::micros(50.0);
    /** Timeout multiplier per successive retry (>= 1). */
    double backoffFactor = 2.0;

    /** Backoff after the attempt with 0-based index @p retry. */
    Time backoff(size_t retry) const;
};

/** Scripted interval [start, end) during which every packet is
 *  lost, regardless of the stochastic channel state. */
struct OutageWindow
{
    Time start;
    Time end;
};

/** Complete fault-injection configuration of one link. */
struct FaultProfile
{
    /** Master switch; false = the simulators take the exact legacy
     *  path (no draws, no retries, byte-identical results). */
    bool enabled = false;
    /** Seed of the per-packet draw stream. */
    uint64_t seed = 2017;
    GilbertElliottParams burst;
    ArqConfig arq;
    std::vector<OutageWindow> outages;
    /** Consecutive abandoned packets before the outage detector
     *  declares the link down and degrades to local processing. */
    size_t outageThreshold = 3;
    /** Recovery-probe cadence while the link is declared down. */
    Time probeInterval = Time::millis(50.0);

    /** True if @p at falls inside a scripted outage window. */
    bool inOutage(Time at) const;

    /** Panics on nonsense parameters (probabilities outside [0,1],
     *  non-positive timeout, backoff < 1, zero threshold). */
    void validate() const;

    /**
     * Named preset: "none" (disabled), "mild" (rare short fades),
     * "bursty" (frequent multi-packet bursts) or "harsh" (long deep
     * fades). Fatal on unknown names.
     */
    static FaultProfile preset(const std::string &name);

    /** All preset names, for usage strings. */
    static const std::vector<std::string> &presetNames();
};

/**
 * Derive the fault profile of one control window from a base
 * profile: same ARQ, outage-detector and probe settings, the
 * window's burst parameters, and a seed decorrelated per window so
 * successive windows draw independent loss sequences while staying
 * reproducible. An ideal window (lossGood == 0 and pGoodToBad == 0)
 * yields a disabled profile, routing the simulators to the exact
 * legacy path. Used by the runtime-adaptive controller (control/).
 */
FaultProfile windowFaultProfile(const FaultProfile &base,
                                const GilbertElliottParams &burst,
                                uint64_t window_index);

/**
 * The seeded per-packet draw engine: one Gilbert-Elliott chain per
 * simulated channel. Draws are consumed in simulation-event order,
 * which is deterministic for a fixed configuration regardless of
 * host thread counts, so fault-injected runs reproduce exactly.
 */
class LossProcess
{
  public:
    explicit LossProcess(const FaultProfile &profile);

    /**
     * Draw the fate of one packet offered at simulated time @p at.
     * Scripted outage windows force a loss without consuming a
     * draw; otherwise the chain consumes one loss draw and one
     * state-flip draw.
     * @return True if the packet (or its ACK) is lost.
     */
    bool dropPacket(Time at);

    /** Currently in the Bad (bursty-loss) state? */
    bool inBadState() const { return _bad; }

    /** Packets drawn through the stochastic chain so far. */
    size_t draws() const { return _draws; }

  private:
    FaultProfile _profile;
    Rng _rng;
    bool _bad = false;
    size_t _draws = 0;
};

} // namespace xpro

#endif // XPRO_WIRELESS_FAULT_HH
