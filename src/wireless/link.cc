#include "wireless/link.hh"

#include <cmath>

#include "common/logging.hh"

namespace xpro
{

double
ChannelModel::expectedTransmissions(size_t bits) const
{
    xproAssert(bitErrorRate >= 0.0 && bitErrorRate < 1.0,
               "bit error rate %f out of [0,1)", bitErrorRate);
    if (bitErrorRate == 0.0)
        return 1.0;
    const double success =
        std::pow(1.0 - bitErrorRate, static_cast<double>(bits));
    xproAssert(success > 1e-12,
               "packet of %zu bits is practically undeliverable at "
               "BER %f",
               bits, bitErrorRate);
    return 1.0 / success;
}

bool
ChannelModel::deliverable(size_t bits) const
{
    xproAssert(bitErrorRate >= 0.0 && bitErrorRate < 1.0,
               "bit error rate %f out of [0,1)", bitErrorRate);
    if (bitErrorRate == 0.0)
        return true;
    return std::pow(1.0 - bitErrorRate,
                    static_cast<double>(bits)) > 1e-12;
}

TransferCost
WirelessLink::transfer(size_t payload_bits) const
{
    xproAssert(payload_bits > 0, "empty transfer");
    TransferCost cost;
    cost.bits = payload_bits + packetHeaderBits;
    cost.attempts = _channel.expectedTransmissions(cost.bits);

    if (_channel.bitErrorRate == 0.0) {
        // Ideal channel: no ACK traffic, exactly the paper's model.
        cost.txEnergy = _radio.txEnergy(cost.bits);
        cost.rxEnergy = _radio.rxEnergy(cost.bits);
        cost.airTime = _radio.airTime(cost.bits);
        return cost;
    }

    // Per attempt: the sender transmits the packet and receives the
    // ACK; the receiver mirrors this. Expected totals scale with the
    // attempt count.
    const double ack =
        static_cast<double>(_channel.ackBits + packetHeaderBits);
    const double data = static_cast<double>(cost.bits);
    cost.txEnergy = (_radio.txPerBit * data + _radio.rxPerBit * ack) *
                    cost.attempts;
    cost.rxEnergy = (_radio.rxPerBit * data + _radio.txPerBit * ack) *
                    cost.attempts;
    cost.airTime = Time::seconds((data + ack) / _radio.dataRateBps *
                                 cost.attempts);
    return cost;
}

AttemptCost
WirelessLink::attempt(size_t payload_bits) const
{
    xproAssert(payload_bits > 0, "empty transfer");
    AttemptCost cost;
    cost.dataBits = payload_bits + packetHeaderBits;
    cost.ackBits = _channel.ackBits + packetHeaderBits;
    cost.dataTx = _radio.txEnergy(cost.dataBits);
    cost.dataRx = _radio.rxEnergy(cost.dataBits);
    cost.ackTx = _radio.txEnergy(cost.ackBits);
    cost.ackRx = _radio.rxEnergy(cost.ackBits);
    cost.dataAirTime = _radio.airTime(cost.dataBits);
    cost.ackAirTime = _radio.airTime(cost.ackBits);
    return cost;
}

} // namespace xpro
