/**
 * @file
 * Wireless transceiver energy models (paper Section 4.2).
 *
 * The paper simulates three published ultra-low-power implantable
 * transceivers; their per-bit energies are quoted directly and are
 * reproduced here verbatim:
 *
 *  - Model 1 (Bohorquez et al. 2009): 2.9 nJ/bit tx, 3.3 nJ/bit rx
 *    ("high-energy").
 *  - Model 2 (Liu et al. 2011a): 1.53 nJ/bit tx, 1.71 nJ/bit rx at
 *    2 Mbps ("medium-energy", the default elsewhere in the paper).
 *  - Model 3 (Liu et al. 2011b): 0.42 nJ/bit tx, 0.295 nJ/bit rx
 *    ("low-energy").
 *
 * Bluetooth Low Energy is intentionally absent: the paper cites
 * prior measurements showing BLE is orders of magnitude above the
 * required uW budget.
 */

#ifndef XPRO_WIRELESS_TRANSCEIVER_HH
#define XPRO_WIRELESS_TRANSCEIVER_HH

#include <array>
#include <string>

#include "common/units.hh"

namespace xpro
{

/** The three evaluated transceiver designs. */
enum class WirelessModel
{
    Model1,
    Model2,
    Model3,
};

/** All wireless models in paper order. */
constexpr std::array<WirelessModel, 3> allWirelessModels = {
    WirelessModel::Model1, WirelessModel::Model2, WirelessModel::Model3,
};

/** A transceiver energy/rate model. */
struct Transceiver
{
    std::string name;
    /** Energy to transmit one bit. */
    Energy txPerBit;
    /** Energy to receive one bit. */
    Energy rxPerBit;
    /** Link data rate. */
    double dataRateBps = 2.0e6;

    Energy
    txEnergy(size_t bits) const
    {
        return txPerBit * static_cast<double>(bits);
    }

    Energy
    rxEnergy(size_t bits) const
    {
        return rxPerBit * static_cast<double>(bits);
    }

    /** Air time of @p bits at the link rate. */
    Time
    airTime(size_t bits) const
    {
        return Time::seconds(static_cast<double>(bits) / dataRateBps);
    }
};

/** Look up one of the paper's transceivers. */
const Transceiver &transceiver(WirelessModel model);

/** Display name, e.g. "Model 2 (1.53/1.71 nJ/bit)". */
const std::string &wirelessModelName(WirelessModel model);

} // namespace xpro

#endif // XPRO_WIRELESS_TRANSCEIVER_HH
