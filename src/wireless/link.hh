/**
 * @file
 * Inter-end wireless link: packetization and per-transfer energy and
 * delay. The paper's transceiver simulator "employs a common
 * communication protocol and considers an 8-bit header in each
 * payload" (Section 4.2); each functional-cell output crossing the
 * ends is one payload.
 *
 * The link optionally models a lossy channel (paper Section 5.7:
 * "more detailed wireless communication models can be used"): with
 * an independent per-bit error rate p under stop-and-wait ARQ, an
 * n-bit packet needs 1/(1-p)^n transmissions in expectation, plus an
 * acknowledgement per attempt. Costs are expectations, so the
 * generator's min-cut stays exact in expectation; a zero error rate
 * reproduces the ideal channel bit for bit.
 */

#ifndef XPRO_WIRELESS_LINK_HH
#define XPRO_WIRELESS_LINK_HH

#include "common/units.hh"
#include "wireless/transceiver.hh"

namespace xpro
{

/** Bits of protocol header prepended to each payload. */
constexpr size_t packetHeaderBits = 8;

/** Channel reliability parameters. */
struct ChannelModel
{
    /** Independent per-bit error probability (0 = ideal channel). */
    double bitErrorRate = 0.0;
    /** Acknowledgement packet length in bits. */
    size_t ackBits = 8;

    /** Expected transmissions for an n-bit packet under ARQ.
     *  Panics when the packet is practically undeliverable; check
     *  deliverable() first for user-supplied rates. */
    double expectedTransmissions(size_t bits) const;

    /**
     * True if an n-bit packet has a realistic chance of delivery at
     * this error rate (the same 1e-12 success floor below which
     * expectedTransmissions() panics). Front-ends use this to
     * reject infeasible --ber values at argument-parse time instead
     * of panicking mid-run.
     */
    bool deliverable(size_t bits) const;
};

/**
 * Costs of a single ARQ attempt: one data frame out, one ACK frame
 * back. The event-level fault-injected simulators charge these per
 * attempt (sim/fault_sim) instead of the expectation-folded
 * TransferCost; a lost attempt pays the data frame but no ACK.
 */
struct AttemptCost
{
    /** Data frame length including the protocol header. */
    size_t dataBits = 0;
    /** ACK frame length including the protocol header. */
    size_t ackBits = 0;
    /** Data frame energy: sender transmits, receiver listens. */
    Energy dataTx;
    Energy dataRx;
    /** ACK frame energy: receiver transmits, sender listens. */
    Energy ackTx;
    Energy ackRx;
    /** Serialization times at the link rate. */
    Time dataAirTime;
    Time ackAirTime;
};

/** Energy/latency cost of one payload transfer over the link. */
struct TransferCost
{
    /** Bits of one transmission attempt including the header. */
    size_t bits = 0;
    /** Expected energy drawn from the transmitting end's battery. */
    Energy txEnergy;
    /** Expected energy drawn from the receiving end's battery. */
    Energy rxEnergy;
    /** Expected link occupancy (serialization + ACKs). */
    Time airTime;
    /** Expected number of transmission attempts. */
    double attempts = 1.0;
};

/**
 * A point-to-point link bound to one transceiver model.
 *
 * Ownership: the link *copies* the transceiver and channel models at
 * construction, so passing a temporary or a shorter-lived object is
 * safe — radio() and channel() return references into the link
 * itself, never into the constructor arguments. Construction sites
 * (fleet/, sim/, benches) may therefore hand the link around by
 * const reference without tracking the original Transceiver's
 * lifetime; only the link object itself must outlive its users.
 */
class WirelessLink
{
  public:
    explicit WirelessLink(const Transceiver &radio,
                          const ChannelModel &channel = {})
        : _radio(radio), _channel(channel)
    {}

    /** Expected cost of delivering @p payload_bits once. */
    TransferCost transfer(size_t payload_bits) const;

    /** Per-attempt cost of one data+ACK exchange for
     *  @p payload_bits, for the fault-injected ARQ simulators. */
    AttemptCost attempt(size_t payload_bits) const;

    /** The link's own copy of the transceiver model. */
    const Transceiver &radio() const { return _radio; }
    /** The link's own copy of the channel model. */
    const ChannelModel &channel() const { return _channel; }

  private:
    Transceiver _radio;
    ChannelModel _channel;
};

} // namespace xpro

#endif // XPRO_WIRELESS_LINK_HH
