#include "wireless/transceiver.hh"

#include "common/logging.hh"

namespace xpro
{

const Transceiver &
transceiver(WirelessModel model)
{
    // Function-local so lookups from other translation units'
    // static initializers are safe (initialized on first use).
    static const std::array<Transceiver, 3> models = {{
        {"Model 1 (2.9/3.3 nJ/bit)", Energy::nanos(2.9),
         Energy::nanos(3.3), 2.0e6},
        {"Model 2 (1.53/1.71 nJ/bit)", Energy::nanos(1.53),
         Energy::nanos(1.71), 2.0e6},
        {"Model 3 (0.42/0.295 nJ/bit)", Energy::nanos(0.42),
         Energy::nanos(0.295), 2.0e6},
    }};
    const size_t idx = static_cast<size_t>(model);
    xproAssert(idx < models.size(), "unknown wireless model %zu", idx);
    return models[idx];
}

const std::string &
wirelessModelName(WirelessModel model)
{
    return transceiver(model).name;
}

} // namespace xpro
