#include "wireless/fault.hh"

#include <cmath>

#include "common/logging.hh"

namespace xpro
{

Time
ArqConfig::backoff(size_t retry) const
{
    return ackTimeout *
           std::pow(backoffFactor, static_cast<double>(retry));
}

bool
FaultProfile::inOutage(Time at) const
{
    for (const OutageWindow &window : outages) {
        if (at >= window.start && at < window.end)
            return true;
    }
    return false;
}

namespace
{

void
checkProbability(double p, const char *what)
{
    xproAssert(p >= 0.0 && p <= 1.0, "%s %f out of [0, 1]", what, p);
}

} // namespace

void
FaultProfile::validate() const
{
    checkProbability(burst.lossGood, "good-state loss");
    checkProbability(burst.lossBad, "bad-state loss");
    checkProbability(burst.pGoodToBad, "good-to-bad transition");
    checkProbability(burst.pBadToGood, "bad-to-good transition");
    xproAssert(arq.ackTimeout > Time(), "ACK timeout must be positive");
    xproAssert(arq.backoffFactor >= 1.0,
               "backoff factor %f below 1", arq.backoffFactor);
    xproAssert(outageThreshold > 0, "outage threshold must be > 0");
    xproAssert(probeInterval > Time(),
               "probe interval must be positive");
    for (const OutageWindow &window : outages) {
        xproAssert(window.end > window.start,
                   "empty outage window at %f s", window.start.sec());
    }
}

FaultProfile
FaultProfile::preset(const std::string &name)
{
    FaultProfile profile;
    if (name == "none")
        return profile;
    profile.enabled = true;
    if (name == "mild") {
        // Rare, short fades: the ARQ almost always recovers on the
        // first retry.
        profile.burst = {1e-3, 0.2, 0.005, 0.5};
    } else if (name == "bursty") {
        // Frequent ~10-packet bursts losing most packets: retries
        // and occasional abandonments.
        profile.burst = {1e-3, 0.8, 0.02, 0.1};
    } else if (name == "harsh") {
        // Long deep fades: abandonments are common enough to trip
        // the outage detector.
        profile.burst = {0.05, 0.95, 0.05, 0.05};
    } else {
        fatal("unknown fault profile '%s' (expected none, mild, "
              "bursty or harsh)",
              name.c_str());
    }
    return profile;
}

const std::vector<std::string> &
FaultProfile::presetNames()
{
    static const std::vector<std::string> names = {
        "none",
        "mild",
        "bursty",
        "harsh",
    };
    return names;
}

FaultProfile
windowFaultProfile(const FaultProfile &base,
                   const GilbertElliottParams &burst,
                   uint64_t window_index)
{
    FaultProfile profile = base;
    profile.burst = burst;
    profile.outages.clear(); // scripted outages are trace-global
    // SplitMix64-style decorrelation of the per-window seed.
    uint64_t z = base.seed + 0x9E3779B97F4A7C15ull * (window_index + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    profile.seed = z ^ (z >> 31);
    profile.enabled =
        burst.lossGood > 0.0 || burst.pGoodToBad > 0.0;
    return profile;
}

LossProcess::LossProcess(const FaultProfile &profile)
    : _profile(profile), _rng(profile.seed)
{
    if (_profile.enabled)
        _profile.validate();
}

bool
LossProcess::dropPacket(Time at)
{
    if (!_profile.enabled)
        return false;
    if (_profile.inOutage(at))
        return true;
    ++_draws;
    const GilbertElliottParams &ge = _profile.burst;
    const bool lost = _rng.chance(_bad ? ge.lossBad : ge.lossGood);
    if (_rng.chance(_bad ? ge.pBadToGood : ge.pGoodToBad))
        _bad = !_bad;
    return lost;
}

} // namespace xpro
