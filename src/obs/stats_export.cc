#include "obs/stats_export.hh"

#include <ostream>
#include <sstream>

namespace xpro
{

namespace
{

const char *
kindTag(StatKind kind)
{
    switch (kind) {
      case StatKind::Counter:   return "counter";
      case StatKind::Gauge:     return "gauge";
      case StatKind::Histogram: return "histogram";
    }
    return "?";
}

void
writeHistogram(const SnapshotHistogram &hist, std::ostream &out)
{
    out << "{\"count\":" << hist.count << ",\"sum\":" << hist.sum
        << ",\"buckets\":[";
    bool first = true;
    for (const auto &[lower, count] : hist.buckets) {
        if (!first)
            out << ",";
        first = false;
        out << "[" << lower << "," << count << "]";
    }
    out << "]}";
}

/** One scope section: {"counters":{...},"gauges":{...},
 *  "histograms":{...}} with names sorted (snapshot order). */
void
writeScope(const StatsSnapshot &snap, StatScope scope,
           std::ostream &out)
{
    out << "{";
    bool first_kind = true;
    const struct {
        StatKind kind;
        const char *key;
    } kinds[] = {
        {StatKind::Counter, "counters"},
        {StatKind::Gauge, "gauges"},
        {StatKind::Histogram, "histograms"},
    };
    for (const auto &[kind, key] : kinds) {
        if (!first_kind)
            out << ",";
        first_kind = false;
        out << "\"" << key << "\":{";
        bool first = true;
        for (const SnapshotEntry &entry : snap.entries) {
            if (entry.scope != scope || entry.kind != kind)
                continue;
            if (!first)
                out << ",";
            first = false;
            out << "\"" << entry.name << "\":";
            if (kind == StatKind::Histogram)
                writeHistogram(entry.hist, out);
            else
                out << entry.value;
        }
        out << "}";
    }
    out << "}";
}

} // namespace

void
writeStatsJson(const StatsSnapshot &snap, std::ostream &out)
{
    out << "{\"stable\":";
    writeScope(snap, StatScope::Stable, out);
    out << ",\"diag\":";
    writeScope(snap, StatScope::Diag, out);
    out << "}\n";
}

std::string
statsJson(const StatsSnapshot &snap)
{
    std::ostringstream out;
    writeStatsJson(snap, out);
    return out.str();
}

std::string
statsStableJson(const StatsSnapshot &snap)
{
    std::ostringstream out;
    writeScope(snap, StatScope::Stable, out);
    return out.str();
}

void
writeStatsTable(const StatsSnapshot &snap, std::ostream &out)
{
    if (snap.entries.empty()) {
        out << "  (no stats"
            << (kStatsEnabled ? " recorded" : ": compiled out")
            << ")\n";
        return;
    }
    for (int scope_pass = 0; scope_pass < 2; ++scope_pass) {
        const StatScope scope = scope_pass == 0 ? StatScope::Stable
                                                : StatScope::Diag;
        bool any = false;
        for (const SnapshotEntry &entry : snap.entries) {
            if (entry.scope != scope)
                continue;
            if (!any)
                out << (scope == StatScope::Stable ? "stable:\n"
                                                   : "diag:\n");
            any = true;
            out << "  " << entry.name;
            for (size_t pad = entry.name.size(); pad < 36; ++pad)
                out << ' ';
            out << " " << kindTag(entry.kind) << "  ";
            if (entry.kind == StatKind::Histogram) {
                const SnapshotHistogram &h = entry.hist;
                out << "count=" << h.count << " sum=" << h.sum;
                if (h.count > 0) {
                    out << " mean=" << (h.sum / h.count);
                    const auto &top = h.buckets.back();
                    out << " max_bucket>=" << top.first;
                }
            } else {
                out << entry.value;
            }
            out << "\n";
        }
    }
}

} // namespace xpro
