/**
 * @file
 * Fleet-wide stats registry (DESIGN.md section 17).
 *
 * A process-global table of named counters, gauges and log2-bucket
 * histograms. Three cost tiers on the update path:
 *
 *  - direct updates (`add`/`gaugeMax`/`observe` on the registry) are
 *    one relaxed atomic RMW — fine for warm paths (cache lookups,
 *    ARQ attempts, controller decisions);
 *  - `StatsSlab` gives hot loops a plain (non-atomic) local buffer:
 *    a slab write is an ordinary store, and `absorb()` folds the
 *    slab into the global cells afterwards with commutative merges
 *    (sum for counters/histograms, max for gauges), so the merged
 *    totals are independent of absorb order — the foundation of the
 *    deterministic-snapshot contract;
 *  - with `-DXPRO_STATS=OFF` every update compiles to nothing
 *    (`kStatsEnabled` is false, `XPRO_STAT(...)` expands empty) and
 *    `bench_stats_overhead` gates the compiled-in cost at <= 3%.
 *
 * Stats carry a scope: `Stable` stats are pure functions of the
 * simulated workload (byte-identical snapshots at any shards x
 * workers combination, like FleetReport); `Diag` stats expose
 * execution internals (wheel cascades, per-shard drains, pool queue
 * depth) that legitimately vary with the parallel configuration.
 * Snapshot serialization keeps the two sections separate so the
 * determinism contract stays testable.
 */

#ifndef XPRO_OBS_STATS_REGISTRY_HH
#define XPRO_OBS_STATS_REGISTRY_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace xpro
{

#ifdef XPRO_STATS_OFF
constexpr bool kStatsEnabled = false;
#define XPRO_STAT(expr) \
    do {                \
    } while (false)
#else
constexpr bool kStatsEnabled = true;
/** Wrap a statement that exists purely for stats collection; it is
 *  compiled out entirely under -DXPRO_STATS=OFF. */
#define XPRO_STAT(expr) \
    do {                \
        expr;           \
    } while (false)
#endif

/** Returns kStatsEnabled; a runtime spelling for code (CLI, benches)
 *  that wants to report whether instrumentation is compiled in. */
bool statsCompiledIn();

enum class StatKind : uint8_t { Counter, Gauge, Histogram };

enum class StatScope : uint8_t {
    Stable, ///< deterministic at any shards x workers combination
    Diag,   ///< execution diagnostics; may vary with parallelism
};

/** Opaque handle to a registered stat: an index into the registry's
 *  cell array. Value-initialized handles are invalid until assigned
 *  from a register*() call. */
struct StatId {
    uint32_t cell = UINT32_MAX;
    bool valid() const { return cell != UINT32_MAX; }
};

/** One decoded histogram: log2 buckets, sparse (only non-empty
 *  buckets listed, ascending lower bound). Bucket 0 holds value 0;
 *  bucket b >= 1 holds values in [2^(b-1), 2^b - 1]. */
struct SnapshotHistogram {
    uint64_t count = 0;
    uint64_t sum = 0;
    /** (bucket lower bound, count) pairs, ascending. */
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

struct SnapshotEntry {
    std::string name;
    StatKind kind = StatKind::Counter;
    StatScope scope = StatScope::Stable;
    uint64_t value = 0;       ///< counters and gauges
    SnapshotHistogram hist;   ///< histograms only
};

/** A deterministic point-in-time copy of every registered stat,
 *  sorted by name. Serialization lives in obs/stats_export.hh. */
struct StatsSnapshot {
    std::vector<SnapshotEntry> entries;

    size_t size() const { return entries.size(); }
    const SnapshotEntry *find(const std::string &name) const;
    /** Convenience: counter/gauge value (0 if absent). */
    uint64_t value(const std::string &name) const;
};

class StatsSlab;

class StatsRegistry
{
  public:
    /** Process-global registry. */
    static StatsRegistry &instance();

    /** Cells per histogram: one running sum + 65 log2 buckets
     *  (bucket 0 for value 0, buckets 1..64 via bit_width). */
    static constexpr uint32_t kHistogramBuckets = 65;
    static constexpr uint32_t kHistogramCells = 1 + kHistogramBuckets;
    /** Fixed cell capacity: the cell array never reallocates, so
     *  slabs and concurrent updaters never race a resize. */
    static constexpr uint32_t kMaxCells = 16384;

    /** Register (or look up) a stat. Registration is idempotent by
     *  name and thread-safe; re-registering with a different kind or
     *  scope is a programming error (panics). */
    StatId registerCounter(const std::string &name,
                           StatScope scope = StatScope::Stable);
    StatId registerGauge(const std::string &name,
                         StatScope scope = StatScope::Stable);
    StatId registerHistogram(const std::string &name,
                             StatScope scope = StatScope::Stable);

    /** Direct updates: one relaxed atomic RMW. Invalid ids (and all
     *  updates when stats are compiled out) are no-ops. */
    void add(StatId id, uint64_t delta = 1)
    {
        if constexpr (!kStatsEnabled)
            return;
        if (!id.valid())
            return;
        _cells[id.cell].fetch_add(delta, std::memory_order_relaxed);
    }

    /** Raise a gauge to at least @p value (monotone high-water). */
    void gaugeMax(StatId id, uint64_t value)
    {
        if constexpr (!kStatsEnabled)
            return;
        if (!id.valid())
            return;
        atomicMax(_cells[id.cell], value);
    }

    /** Record one histogram sample. */
    void observe(StatId id, uint64_t value)
    {
        if constexpr (!kStatsEnabled)
            return;
        if (!id.valid())
            return;
        _cells[id.cell].fetch_add(value, std::memory_order_relaxed);
        _cells[id.cell + 1 + bucketOf(value)].fetch_add(
            1, std::memory_order_relaxed);
    }

    /** Fold a slab into the global cells (sum for counters and
     *  histograms, max for gauges) and zero the slab so it can be
     *  reused. Merge ops are commutative and associative, so any
     *  absorb order yields identical totals. */
    void absorb(StatsSlab &slab);

    /**
     * Fold a locally accumulated log2 histogram into @p id in one
     * cold call: @p sum is the running value sum, @p bucketCounts
     * holds per-bucket sample counts indexed by bucketOf(). The
     * counterpart of observe() for hot loops that keep a plain
     * local array (fleet/population.cc) instead of paying even a
     * slab write per sample.
     */
    void mergeHistogram(StatId id, uint64_t sum,
                        const uint64_t *bucketCounts,
                        uint32_t buckets);

    /** Deterministic snapshot of every registered stat, sorted by
     *  name. */
    StatsSnapshot snapshot() const;

    /** Zero every cell (registrations survive). Tests and benches
     *  use this to isolate runs. */
    void reset();

    /** Cells allocated so far (slabs size themselves from this). */
    uint32_t cellsUsed() const
    {
        return _cellsUsed.load(std::memory_order_acquire);
    }

    /** log2 bucket index for @p value: 0 for 0, else bit_width. */
    static uint32_t bucketOf(uint64_t value);
    /** Inclusive lower bound of bucket @p b. */
    static uint64_t bucketLowerBound(uint32_t b);

    StatsRegistry(const StatsRegistry &) = delete;
    StatsRegistry &operator=(const StatsRegistry &) = delete;

  private:
    StatsRegistry();

    static void atomicMax(std::atomic<uint64_t> &cell, uint64_t value)
    {
        uint64_t seen = cell.load(std::memory_order_relaxed);
        while (seen < value &&
               !cell.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed))
            ;
    }

    StatId registerStat(const std::string &name, StatKind kind,
                        StatScope scope, uint32_t cells);

    struct Meta {
        std::string name;
        StatKind kind;
        StatScope scope;
        uint32_t cell;
    };

    mutable std::mutex _mutex; ///< registration + snapshot metadata
    std::vector<Meta> _stats;
    std::unordered_map<std::string, size_t> _byName;
    std::atomic<uint32_t> _cellsUsed{0};
    /** Fixed-capacity cell storage; zero-initialized, never moved. */
    std::unique_ptr<std::atomic<uint64_t>[]> _cells;
};

/**
 * A plain-write local buffer for hot loops: one uint64 slot per
 * registry cell, written without atomics, merged into the registry
 * once per batch/run via StatsRegistry::absorb(). Grows lazily (out
 * of line) the first time an id past its current size is touched,
 * so construction order relative to stat registration doesn't
 * matter; steady-state updates never allocate.
 */
class StatsSlab
{
  public:
    StatsSlab() = default;
    /** Pre-size to the registry's current cell count so the hot
     *  path never takes the grow branch. */
    explicit StatsSlab(const StatsRegistry &registry);

    void add(StatId id, uint64_t delta = 1)
    {
        if constexpr (!kStatsEnabled)
            return;
        if (!id.valid())
            return;
        if (id.cell >= _cells.size())
            grow();
        _cells[id.cell] += delta;
    }

    void gaugeMax(StatId id, uint64_t value)
    {
        if constexpr (!kStatsEnabled)
            return;
        if (!id.valid())
            return;
        if (id.cell >= _cells.size())
            grow();
        if (_cells[id.cell] < value)
            _cells[id.cell] = value;
    }

    void observe(StatId id, uint64_t value)
    {
        if constexpr (!kStatsEnabled)
            return;
        if (!id.valid())
            return;
        if (id.cell + StatsRegistry::kHistogramCells > _cells.size())
            grow();
        _cells[id.cell] += value;
        _cells[id.cell + 1 + StatsRegistry::bucketOf(value)] += 1;
    }

    size_t cellCount() const { return _cells.size(); }

  private:
    friend class StatsRegistry;
    void grow(); ///< cold: resize to the registry's current span

    std::vector<uint64_t> _cells;
};

} // namespace xpro

#endif // XPRO_OBS_STATS_REGISTRY_HH
