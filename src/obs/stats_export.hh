/**
 * @file
 * Snapshot serialization: stable-key JSON (the `--stats-out` format)
 * and the human-readable table behind `xpro_cli --stats`.
 *
 * The JSON document has two top-level sections, "stable" and "diag"
 * (see StatScope); within each, stats are grouped by kind and sorted
 * by name, so two snapshots of identical stat values serialize to
 * byte-identical documents. `statsStableJson()` serializes the
 * stable section alone — the string the determinism tests and
 * bench_stats_overhead compare across shards x workers runs.
 */

#ifndef XPRO_OBS_STATS_EXPORT_HH
#define XPRO_OBS_STATS_EXPORT_HH

#include <iosfwd>
#include <string>

#include "obs/stats_registry.hh"

namespace xpro
{

/** Full snapshot as a two-section JSON document. */
void writeStatsJson(const StatsSnapshot &snap, std::ostream &out);
std::string statsJson(const StatsSnapshot &snap);

/** The "stable" section alone — the byte-identity contract. */
std::string statsStableJson(const StatsSnapshot &snap);

/** Human table: one row per stat, histograms summarized. */
void writeStatsTable(const StatsSnapshot &snap, std::ostream &out);

} // namespace xpro

#endif // XPRO_OBS_STATS_EXPORT_HH
