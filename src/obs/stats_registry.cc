#include "obs/stats_registry.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace xpro
{

bool
statsCompiledIn()
{
    return kStatsEnabled;
}

const SnapshotEntry *
StatsSnapshot::find(const std::string &name) const
{
    for (const SnapshotEntry &entry : entries)
        if (entry.name == name)
            return &entry;
    return nullptr;
}

uint64_t
StatsSnapshot::value(const std::string &name) const
{
    const SnapshotEntry *entry = find(name);
    return entry ? entry->value : 0;
}

StatsRegistry &
StatsRegistry::instance()
{
    static StatsRegistry registry;
    return registry;
}

StatsRegistry::StatsRegistry()
{
    // Value-initialization zeroes every atomic (C++20); the array is
    // never reallocated, so cell references stay valid for the
    // process lifetime and slabs can index it without locks.
    _cells = std::make_unique<std::atomic<uint64_t>[]>(kMaxCells);
}

uint32_t
StatsRegistry::bucketOf(uint64_t value)
{
    return value == 0 ? 0u
                      : static_cast<uint32_t>(std::bit_width(value));
}

uint64_t
StatsRegistry::bucketLowerBound(uint32_t b)
{
    if (b == 0)
        return 0;
    return uint64_t(1) << (b - 1);
}

StatId
StatsRegistry::registerStat(const std::string &name, StatKind kind,
                            StatScope scope, uint32_t cells)
{
    if constexpr (!kStatsEnabled)
        return StatId{};
    std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _byName.find(name);
    if (it != _byName.end()) {
        const Meta &meta = _stats[it->second];
        xproAssert(meta.kind == kind,
                   "stat '%s' re-registered with a different kind",
                   name.c_str());
        xproAssert(meta.scope == scope,
                   "stat '%s' re-registered with a different scope",
                   name.c_str());
        return StatId{meta.cell};
    }
    const uint32_t cell = _cellsUsed.load(std::memory_order_relaxed);
    xproAssert(cell + cells <= kMaxCells,
               "stats registry cell capacity (%u) exhausted "
               "registering '%s'",
               kMaxCells, name.c_str());
    _stats.push_back(Meta{name, kind, scope, cell});
    _byName.emplace(name, _stats.size() - 1);
    _cellsUsed.store(cell + cells, std::memory_order_release);
    return StatId{cell};
}

StatId
StatsRegistry::registerCounter(const std::string &name,
                               StatScope scope)
{
    return registerStat(name, StatKind::Counter, scope, 1);
}

StatId
StatsRegistry::registerGauge(const std::string &name, StatScope scope)
{
    return registerStat(name, StatKind::Gauge, scope, 1);
}

StatId
StatsRegistry::registerHistogram(const std::string &name,
                                 StatScope scope)
{
    return registerStat(name, StatKind::Histogram, scope,
                        kHistogramCells);
}

void
StatsRegistry::absorb(StatsSlab &slab)
{
    if constexpr (!kStatsEnabled)
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    for (const Meta &meta : _stats) {
        const uint32_t span = meta.kind == StatKind::Histogram
                                  ? kHistogramCells
                                  : 1;
        for (uint32_t c = meta.cell;
             c < meta.cell + span && c < slab._cells.size(); ++c) {
            const uint64_t v = slab._cells[c];
            if (v == 0)
                continue;
            if (meta.kind == StatKind::Gauge)
                atomicMax(_cells[c], v);
            else
                _cells[c].fetch_add(v, std::memory_order_relaxed);
            slab._cells[c] = 0;
        }
    }
}

void
StatsRegistry::mergeHistogram(StatId id, uint64_t sum,
                              const uint64_t *bucketCounts,
                              uint32_t buckets)
{
    if constexpr (!kStatsEnabled)
        return;
    if (!id.valid())
        return;
    xproAssert(buckets <= kHistogramBuckets,
               "mergeHistogram: %u buckets exceed the %u-bucket "
               "layout",
               buckets, kHistogramBuckets);
    if (sum != 0)
        _cells[id.cell].fetch_add(sum, std::memory_order_relaxed);
    for (uint32_t b = 0; b < buckets; ++b) {
        if (bucketCounts[b] != 0)
            _cells[id.cell + 1 + b].fetch_add(
                bucketCounts[b], std::memory_order_relaxed);
    }
}

StatsSnapshot
StatsRegistry::snapshot() const
{
    StatsSnapshot snap;
    if constexpr (!kStatsEnabled)
        return snap;
    std::lock_guard<std::mutex> lock(_mutex);
    snap.entries.reserve(_stats.size());
    for (const Meta &meta : _stats) {
        SnapshotEntry entry;
        entry.name = meta.name;
        entry.kind = meta.kind;
        entry.scope = meta.scope;
        if (meta.kind == StatKind::Histogram) {
            entry.hist.sum =
                _cells[meta.cell].load(std::memory_order_relaxed);
            for (uint32_t b = 0; b < kHistogramBuckets; ++b) {
                const uint64_t count =
                    _cells[meta.cell + 1 + b].load(
                        std::memory_order_relaxed);
                if (count == 0)
                    continue;
                entry.hist.count += count;
                entry.hist.buckets.emplace_back(bucketLowerBound(b),
                                                count);
            }
        } else {
            entry.value =
                _cells[meta.cell].load(std::memory_order_relaxed);
        }
        snap.entries.push_back(std::move(entry));
    }
    std::sort(snap.entries.begin(), snap.entries.end(),
              [](const SnapshotEntry &a, const SnapshotEntry &b) {
                  return a.name < b.name;
              });
    return snap;
}

void
StatsRegistry::reset()
{
    if constexpr (!kStatsEnabled)
        return;
    std::lock_guard<std::mutex> lock(_mutex);
    const uint32_t used = _cellsUsed.load(std::memory_order_relaxed);
    for (uint32_t c = 0; c < used; ++c)
        _cells[c].store(0, std::memory_order_relaxed);
}

StatsSlab::StatsSlab(const StatsRegistry &registry)
    : _cells(registry.cellsUsed(), 0)
{
}

void
StatsSlab::grow()
{
    const size_t span = StatsRegistry::instance().cellsUsed();
    if (span > _cells.size())
        _cells.resize(span, 0);
    xproAssert(_cells.size() <= StatsRegistry::kMaxCells,
               "stats slab grew past the registry capacity");
}

} // namespace xpro
