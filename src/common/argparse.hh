/**
 * @file
 * Small command-line value parsers shared by the tools. Each parser
 * validates the whole string and raises FatalError (via fatal())
 * with the offending flag name on bad input, so front-ends get
 * uniform "--flag: ... " diagnostics and tests can cover the
 * validation without spawning a process.
 */

#ifndef XPRO_COMMON_ARGPARSE_HH
#define XPRO_COMMON_ARGPARSE_HH

#include <cstdint>
#include <string>

namespace xpro
{

/** Strictly positive integer ("--fleet 0" and "-3" are fatal). */
size_t parsePositiveArg(const std::string &value, const char *what);

/**
 * Strictly positive integer capped at @p max. Rejects values that
 * would overflow downstream arithmetic — including inputs so large
 * that strtoll itself saturates (ERANGE), which parsePositiveArg
 * would silently accept as LLONG_MAX. Every size-like CLI flag that
 * multiplies into buffer sizes or loop bounds must come through
 * here.
 */
size_t parseBoundedArg(const std::string &value, const char *what,
                       size_t max);

/** Non-negative integer ("--ml-workers 0" means auto-detect). */
size_t parseCountArg(const std::string &value, const char *what);

/** Probability in [0, 1) (bit error rates). */
double parseProbabilityArg(const std::string &value,
                           const char *what);

/** Non-negative 64-bit RNG seed. */
uint64_t parseSeedArg(const std::string &value, const char *what);

/** Strictly positive real ("--repartition-period 0" is fatal). */
double parsePositiveRealArg(const std::string &value,
                            const char *what);

/** Non-negative real ("--hysteresis -0.1" is fatal). */
double parseNonNegativeRealArg(const std::string &value,
                               const char *what);

} // namespace xpro

#endif // XPRO_COMMON_ARGPARSE_HH
