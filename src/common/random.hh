/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the reproduction (synthetic biosignal
 * generators, random-subspace feature sampling, train/test splits)
 * draw from explicitly seeded Rng instances so that every experiment
 * is reproducible run-to-run.
 */

#ifndef XPRO_COMMON_RANDOM_HH
#define XPRO_COMMON_RANDOM_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace xpro
{

/** A small, fast, seedable random number generator (xoshiro256**). */
class Rng
{
  public:
    /** Construct with the given seed; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n), n > 0. */
    uint64_t below(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t range(int64_t lo, int64_t hi);

    /** Standard normal variate (Box-Muller, cached pair). */
    double gaussian();

    /** Normal variate with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i) {
            const size_t j = static_cast<size_t>(below(i));
            std::swap(items[i - 1], items[j]);
        }
    }

    /**
     * Draw k distinct indices from [0, n) in random order.
     * Used by the random-subspace feature sampler.
     */
    std::vector<size_t> sampleWithoutReplacement(size_t n, size_t k);

  private:
    uint64_t _state[4];
    bool _hasCachedGaussian = false;
    double _cachedGaussian = 0.0;
};

} // namespace xpro

#endif // XPRO_COMMON_RANDOM_HH
