/**
 * @file
 * Fixed-size std::thread worker pool shared by the fleet design
 * phase and the generator's parallel lambda sweep.
 *
 * Per-node design (training + topology build + generator run) is
 * independent between nodes, so the fleet designs nodes concurrently:
 * run() executes an indexed task set, workers claiming indices from a
 * shared atomic counter. Results are keyed by index, never by
 * completion order, so the outcome is identical for any worker
 * count — the determinism the fleet report tests rely on.
 *
 * The pool also records each worker's CPU time during the last run
 * (thread CPU, not wall clock, so timesharing on few cores does not
 * inflate it); the scaling bench derives the pool's load-balancing
 * speedup (total work / busiest worker) from it, which is what
 * wall-clock speedup converges to when enough hardware threads
 * exist.
 */

#ifndef XPRO_COMMON_WORKER_POOL_HH
#define XPRO_COMMON_WORKER_POOL_HH

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "common/units.hh"

namespace xpro
{

/**
 * Resolve a worker-count knob: 0 means "one worker per hardware
 * thread", anything else passes through. The shared convention of
 * every `--*-workers` flag.
 */
size_t resolveWorkerCount(size_t requested);

/** A fixed-width pool executing indexed task sets. */
class WorkerPool
{
  public:
    using Task = std::function<void(size_t index)>;

    /**
     * @param workers Concurrent workers; 0 and 1 both execute
     *        inline on the calling thread (no threads spawned).
     */
    explicit WorkerPool(size_t workers = 1);

    size_t workerCount() const { return _workers; }

    /**
     * Execute @p task for every index in [0, count), blocking until
     * all complete. Indices are claimed dynamically, so heterogeneous
     * task durations balance across workers. The first exception
     * thrown by any task is rethrown here after all workers join.
     */
    void run(size_t count, const Task &task);

    /**
     * Map an indexed task set to a result vector: result[i] is
     * produced by fn(i). Deterministic for any worker count.
     */
    template <typename T, typename Fn>
    std::vector<T>
    map(size_t count, Fn fn)
    {
        std::vector<std::optional<T>> slots(count);
        run(count, [&](size_t i) { slots[i].emplace(fn(i)); });
        std::vector<T> results;
        results.reserve(count);
        for (std::optional<T> &slot : slots)
            results.push_back(std::move(*slot));
        return results;
    }

    /** CPU time per worker during the last run(). */
    const std::vector<Time> &lastBusy() const { return _busy; }

    /** Total task CPU time of the last run (sum over workers). */
    Time lastWork() const;

    /** Busiest worker's CPU time of the last run: the makespan the
     *  run would have on enough free cores. */
    Time lastMakespan() const;

    /** Wall-clock duration of the last run(). */
    Time lastWall() const { return _wall; }

  private:
    size_t _workers;
    std::vector<Time> _busy;
    Time _wall;
};

} // namespace xpro

#endif // XPRO_COMMON_WORKER_POOL_HH
