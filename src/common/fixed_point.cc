#include "common/fixed_point.hh"

namespace xpro
{

Fixed
Fixed::sqrt() const
{
    if (_raw <= 0)
        return Fixed();

    // Bit-by-bit integer square root over the value shifted left by
    // fracBits, so the result lands back on the Q16.16 grid:
    //   result_raw = floor(sqrt(raw << 16)).
    uint64_t value = static_cast<uint64_t>(_raw) << fracBits;
    uint64_t result = 0;
    // Highest power-of-four at or below the 48-bit operand.
    uint64_t bit = uint64_t{1} << 46;
    while (bit > value)
        bit >>= 2;

    while (bit != 0) {
        if (value >= result + bit) {
            value -= result + bit;
            result = (result >> 1) + bit;
        } else {
            result >>= 1;
        }
        bit >>= 2;
    }
    return Fixed::fromRaw(static_cast<int32_t>(result));
}

} // namespace xpro
