/**
 * @file
 * Streaming summary statistics accumulator.
 *
 * Used throughout the evaluation harness to aggregate per-segment
 * energies, delays and accuracies. Uses Welford's algorithm so the
 * variance is numerically stable regardless of magnitude.
 */

#ifndef XPRO_COMMON_STATS_HH
#define XPRO_COMMON_STATS_HH

#include <cstddef>
#include <limits>

namespace xpro
{

/** Online accumulator of count / mean / variance / min / max. */
class Summary
{
  public:
    /** Add one observation. */
    void add(double value);

    /** Merge another accumulator into this one. */
    void merge(const Summary &other);

    size_t count() const { return _count; }
    double mean() const { return _count ? _mean : 0.0; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double sum() const { return _mean * static_cast<double>(_count); }

    /** Population variance (zero for fewer than two samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = std::numeric_limits<double>::infinity();
    double _max = -std::numeric_limits<double>::infinity();
};

} // namespace xpro

#endif // XPRO_COMMON_STATS_HH
