#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace xpro
{

void
Summary::add(double value)
{
    ++_count;
    const double delta = value - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (value - _mean);
    _min = std::min(_min, value);
    _max = std::max(_max, value);
}

void
Summary::merge(const Summary &other)
{
    if (other._count == 0)
        return;
    if (_count == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(_count);
    const double n2 = static_cast<double>(other._count);
    const double delta = other._mean - _mean;
    const double total = n1 + n2;
    _mean += delta * n2 / total;
    _m2 += other._m2 + delta * delta * n1 * n2 / total;
    _count += other._count;
    _min = std::min(_min, other._min);
    _max = std::max(_max, other._max);
}

double
Summary::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

} // namespace xpro
