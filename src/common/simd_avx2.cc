/**
 * @file
 * AVX2 SIMD backend, isolated in its own translation unit so it can
 * be compiled with -mavx2 while the rest of the build stays on the
 * baseline ISA. simd.cc selects these at load time with
 * __builtin_cpu_supports("avx2"); they are never reached on CPUs
 * without AVX2. Mul + add only — no FMA — so lane arithmetic matches
 * the SSE2 and generic backends bit for bit.
 */

#include "common/simd.hh"

#if XPRO_SIMD_AVX2_AVAILABLE

#include <immintrin.h>

namespace xpro
{
namespace detail
{

void
avx2Scale(double *dst, const double *src, double c, size_t n)
{
    const __m256d vc = _mm256_set1_pd(c);
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(dst + i,
                         _mm256_mul_pd(vc,
                                       _mm256_loadu_pd(src + i)));
    for (; i < n; ++i)
        dst[i] = c * src[i];
}

void
avx2Axpy(double *dst, const double *src, double c, size_t n)
{
    const __m256d vc = _mm256_set1_pd(c);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_add_pd(
            _mm256_loadu_pd(dst + i),
            _mm256_mul_pd(vc, _mm256_loadu_pd(src + i)));
        _mm256_storeu_pd(dst + i, v);
    }
    for (; i < n; ++i)
        dst[i] += c * src[i];
}

void
avx2DotPacked(const double *a, const double *packed, size_t n,
              double *out)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t k = 0; k < n; ++k) {
        const __m256d ak = _mm256_set1_pd(a[k]);
        const double *col = packed + k * simdPackWidth;
        acc0 = _mm256_add_pd(
            acc0, _mm256_mul_pd(ak, _mm256_loadu_pd(col + 0)));
        acc1 = _mm256_add_pd(
            acc1, _mm256_mul_pd(ak, _mm256_loadu_pd(col + 4)));
    }
    _mm256_storeu_pd(out + 0, acc0);
    _mm256_storeu_pd(out + 4, acc1);
}

void
avx2SquaredNormsPacked(const double *packed, size_t n, double *out)
{
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    for (size_t k = 0; k < n; ++k) {
        const double *col = packed + k * simdPackWidth;
        const __m256d c0 = _mm256_loadu_pd(col + 0);
        const __m256d c1 = _mm256_loadu_pd(col + 4);
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(c0, c0));
        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(c1, c1));
    }
    _mm256_storeu_pd(out + 0, acc0);
    _mm256_storeu_pd(out + 4, acc1);
}

void
avx2ZScore(double *dst, const double *src, double mu, double sigma,
           size_t n)
{
    const __m256d vmu = _mm256_set1_pd(mu);
    const __m256d vsigma = _mm256_set1_pd(sigma);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d v = _mm256_div_pd(
            _mm256_sub_pd(_mm256_loadu_pd(src + i), vmu), vsigma);
        _mm256_storeu_pd(dst + i, v);
    }
    for (; i < n; ++i)
        dst[i] = (src[i] - mu) / sigma;
}

void
avx2MaxMinSumPacked(const double *packed, size_t n, double *maxOut,
                    double *minOut, double *sumOut)
{
    // _mm256_max_pd(v, acc) keeps acc on ties (including -0.0 vs
    // 0.0), matching std::max_element's strictly-greater update;
    // same for min.
    __m256d mx0 = _mm256_loadu_pd(packed + 0);
    __m256d mx1 = _mm256_loadu_pd(packed + 4);
    __m256d mn0 = mx0, mn1 = mx1;
    __m256d sm0 = _mm256_setzero_pd();
    __m256d sm1 = _mm256_setzero_pd();
    for (size_t i = 0; i < n; ++i) {
        const double *row = packed + i * simdPackWidth;
        const __m256d v0 = _mm256_loadu_pd(row + 0);
        const __m256d v1 = _mm256_loadu_pd(row + 4);
        mx0 = _mm256_max_pd(v0, mx0);
        mx1 = _mm256_max_pd(v1, mx1);
        mn0 = _mm256_min_pd(v0, mn0);
        mn1 = _mm256_min_pd(v1, mn1);
        sm0 = _mm256_add_pd(sm0, v0);
        sm1 = _mm256_add_pd(sm1, v1);
    }
    _mm256_storeu_pd(maxOut + 0, mx0);
    _mm256_storeu_pd(maxOut + 4, mx1);
    _mm256_storeu_pd(minOut + 0, mn0);
    _mm256_storeu_pd(minOut + 4, mn1);
    _mm256_storeu_pd(sumOut + 0, sm0);
    _mm256_storeu_pd(sumOut + 4, sm1);
}

void
avx2CenteredSquareSumPacked(const double *packed, size_t n,
                            const double *mu, double *accOut)
{
    const __m256d mu0 = _mm256_loadu_pd(mu + 0);
    const __m256d mu1 = _mm256_loadu_pd(mu + 4);
    __m256d a0 = _mm256_setzero_pd();
    __m256d a1 = _mm256_setzero_pd();
    for (size_t i = 0; i < n; ++i) {
        const double *row = packed + i * simdPackWidth;
        const __m256d d0 =
            _mm256_sub_pd(_mm256_loadu_pd(row + 0), mu0);
        const __m256d d1 =
            _mm256_sub_pd(_mm256_loadu_pd(row + 4), mu1);
        a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
        a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
    }
    _mm256_storeu_pd(accOut + 0, a0);
    _mm256_storeu_pd(accOut + 4, a1);
}

void
avx2SignCrossingsPacked(const double *packed, size_t n, double *out)
{
    // Negative-sample masks XORed across consecutive rows mark sign
    // changes; subtracting the -1/0 lanes from integer counters
    // counts them exactly.
    const __m256d zero = _mm256_setzero_pd();
    __m256i c0 = _mm256_setzero_si256();
    __m256i c1 = _mm256_setzero_si256();
    __m256d p0 =
        _mm256_cmp_pd(_mm256_loadu_pd(packed + 0), zero, _CMP_LT_OQ);
    __m256d p1 =
        _mm256_cmp_pd(_mm256_loadu_pd(packed + 4), zero, _CMP_LT_OQ);
    for (size_t i = 1; i < n; ++i) {
        const double *row = packed + i * simdPackWidth;
        const __m256d q0 = _mm256_cmp_pd(_mm256_loadu_pd(row + 0),
                                         zero, _CMP_LT_OQ);
        const __m256d q1 = _mm256_cmp_pd(_mm256_loadu_pd(row + 4),
                                         zero, _CMP_LT_OQ);
        c0 = _mm256_sub_epi64(
            c0, _mm256_castpd_si256(_mm256_xor_pd(p0, q0)));
        c1 = _mm256_sub_epi64(
            c1, _mm256_castpd_si256(_mm256_xor_pd(p1, q1)));
        p0 = q0;
        p1 = q1;
    }
    long long counts[simdPackWidth];
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(counts + 0), c0);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(counts + 4), c1);
    for (size_t j = 0; j < simdPackWidth; ++j)
        out[j] = static_cast<double>(counts[j]);
}

void
avx2Moment34Packed(const double *packed, size_t n, const double *mu,
                   const double *sigma, double *acc3, double *acc4)
{
    const __m256d mu0 = _mm256_loadu_pd(mu + 0);
    const __m256d mu1 = _mm256_loadu_pd(mu + 4);
    const __m256d sg0 = _mm256_loadu_pd(sigma + 0);
    const __m256d sg1 = _mm256_loadu_pd(sigma + 4);
    __m256d a30 = _mm256_setzero_pd();
    __m256d a31 = _mm256_setzero_pd();
    __m256d a40 = _mm256_setzero_pd();
    __m256d a41 = _mm256_setzero_pd();
    for (size_t i = 0; i < n; ++i) {
        const double *row = packed + i * simdPackWidth;
        const __m256d z0 = _mm256_div_pd(
            _mm256_sub_pd(_mm256_loadu_pd(row + 0), mu0), sg0);
        const __m256d z1 = _mm256_div_pd(
            _mm256_sub_pd(_mm256_loadu_pd(row + 4), mu1), sg1);
        const __m256d c0 =
            _mm256_mul_pd(_mm256_mul_pd(z0, z0), z0);
        const __m256d c1 =
            _mm256_mul_pd(_mm256_mul_pd(z1, z1), z1);
        a30 = _mm256_add_pd(a30, c0);
        a31 = _mm256_add_pd(a31, c1);
        a40 = _mm256_add_pd(a40, _mm256_mul_pd(c0, z0));
        a41 = _mm256_add_pd(a41, _mm256_mul_pd(c1, z1));
    }
    _mm256_storeu_pd(acc3 + 0, a30);
    _mm256_storeu_pd(acc3 + 4, a31);
    _mm256_storeu_pd(acc4 + 0, a40);
    _mm256_storeu_pd(acc4 + 4, a41);
}

} // namespace detail
} // namespace xpro

#endif // XPRO_SIMD_AVX2_AVAILABLE
