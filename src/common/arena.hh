/**
 * @file
 * Chunked monotonic scratch arena for the serving hot path.
 *
 * Lifetime rules (see DESIGN.md §15):
 *  - alloc() hands out raw uninitialized storage; nothing is ever
 *    freed individually. reset() invalidates every outstanding
 *    pointer at once but KEEPS the underlying blocks, so after the
 *    first pass over a workload has grown the arena to its
 *    high-water mark, steady-state reset()/alloc() cycles touch the
 *    heap zero times. That is the property the counting-allocator
 *    tests pin down.
 *  - One arena per thread of execution; arenas are not synchronized.
 *  - Only trivially-destructible payloads belong in an arena
 *    (alloc<T> static-asserts this): reset() runs no destructors.
 */

#ifndef XPRO_COMMON_ARENA_HH
#define XPRO_COMMON_ARENA_HH

#include <cstddef>
#include <type_traits>
#include <vector>

namespace xpro
{

class Arena
{
  public:
    /// @param blockBytes granularity of backing allocations; single
    /// requests larger than this get a dedicated block.
    explicit Arena(size_t blockBytes = 1 << 16);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /// Raw storage, aligned to alignof(std::max_align_t). Valid
    /// until the next reset().
    void *alloc(size_t bytes);

    /// Typed convenience: storage for @p count T's, uninitialized.
    template <typename T>
    T *
    alloc(size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "Arena never runs destructors");
        static_assert(alignof(T) <= alignof(std::max_align_t),
                      "over-aligned types not supported");
        return static_cast<T *>(alloc(count * sizeof(T)));
    }

    /// Rewind to empty, keeping every block for reuse. O(1) in the
    /// common case (cursor back to block zero).
    void reset();

    /// Bytes currently handed out since the last reset().
    size_t bytesUsed() const { return _bytesUsed; }

    /// Total backing capacity across all blocks (the high-water
    /// mark's footprint; never shrinks).
    size_t bytesReserved() const { return _bytesReserved; }

    /// Number of backing heap allocations made over the arena's
    /// lifetime. Stops growing once the workload's high-water mark
    /// is reached — the steady-state invariant the allocation tests
    /// check.
    size_t blockCount() const { return _blocks.size(); }

  private:
    struct Block
    {
        std::vector<unsigned char> storage;
    };

    size_t _blockBytes;
    std::vector<Block> _blocks;
    size_t _currentBlock = 0; ///< index of the block being filled
    size_t _cursor = 0;       ///< offset into the current block
    size_t _bytesUsed = 0;
    size_t _bytesReserved = 0;
};

} // namespace xpro

#endif // XPRO_COMMON_ARENA_HH
