#include "common/simd.hh"

#if defined(__x86_64__) || defined(_M_X64)
#define XPRO_SIMD_X86 1
#include <emmintrin.h> // SSE2: baseline on x86-64
#else
#define XPRO_SIMD_X86 0
#endif

namespace xpro
{

namespace scalar_ref
{

double
dot(const double *a, const double *b, size_t n)
{
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

double
squaredNorm(const double *a, size_t n)
{
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i)
        acc += a[i] * a[i];
    return acc;
}

void
scale(double *dst, const double *src, double c, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = c * src[i];
}

void
axpy(double *dst, const double *src, double c, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] += c * src[i];
}

void
zscore(double *dst, const double *src, double mu, double sigma,
       size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = (src[i] - mu) / sigma;
}

void
maxMinSumPacked(const double *packed, size_t n, double *maxOut,
                double *minOut, double *sumOut)
{
    for (size_t j = 0; j < simdPackWidth; ++j) {
        double mx = packed[j];
        double mn = packed[j];
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double v = packed[i * simdPackWidth + j];
            if (mx < v)
                mx = v;
            if (v < mn)
                mn = v;
            sum += v;
        }
        maxOut[j] = mx;
        minOut[j] = mn;
        sumOut[j] = sum;
    }
}

void
centeredSquareSumPacked(const double *packed, size_t n,
                        const double *mu, double *accOut)
{
    for (size_t j = 0; j < simdPackWidth; ++j) {
        double acc = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double d = packed[i * simdPackWidth + j] - mu[j];
            acc += d * d;
        }
        accOut[j] = acc;
    }
}

void
signCrossingsPacked(const double *packed, size_t n, double *out)
{
    for (size_t j = 0; j < simdPackWidth; ++j) {
        size_t crossings = 0;
        for (size_t i = 1; i < n; ++i) {
            const bool prev =
                packed[(i - 1) * simdPackWidth + j] < 0.0;
            const bool cur = packed[i * simdPackWidth + j] < 0.0;
            crossings += prev != cur;
        }
        out[j] = static_cast<double>(crossings);
    }
}

void
moment34Packed(const double *packed, size_t n, const double *mu,
               const double *sigma, double *acc3, double *acc4)
{
    for (size_t j = 0; j < simdPackWidth; ++j) {
        double a3 = 0.0;
        double a4 = 0.0;
        for (size_t i = 0; i < n; ++i) {
            const double z =
                (packed[i * simdPackWidth + j] - mu[j]) / sigma[j];
            const double z3 = z * z * z;
            a3 += z3;
            a4 += z3 * z;
        }
        acc3[j] = a3;
        acc4[j] = a4;
    }
}

} // namespace scalar_ref

namespace
{

// ---- Generic backend -------------------------------------------------
//
// Plain elementwise loops. Each output element's arithmetic is the
// same mul-then-add sequence the intrinsic paths perform per lane,
// so every backend agrees bitwise.

[[maybe_unused]] void
genericDotPacked(const double *a, const double *packed, size_t n,
                 double *out)
{
    double acc[simdPackWidth] = {};
    for (size_t k = 0; k < n; ++k) {
        const double ak = a[k];
        const double *col = packed + k * simdPackWidth;
        for (size_t j = 0; j < simdPackWidth; ++j)
            acc[j] += ak * col[j];
    }
    for (size_t j = 0; j < simdPackWidth; ++j)
        out[j] = acc[j];
}

[[maybe_unused]] void
genericSquaredNormsPacked(const double *packed, size_t n, double *out)
{
    double acc[simdPackWidth] = {};
    for (size_t k = 0; k < n; ++k) {
        const double *col = packed + k * simdPackWidth;
        for (size_t j = 0; j < simdPackWidth; ++j)
            acc[j] += col[j] * col[j];
    }
    for (size_t j = 0; j < simdPackWidth; ++j)
        out[j] = acc[j];
}

#if XPRO_SIMD_X86

// ---- SSE2 backend ----------------------------------------------------

void
sse2Scale(double *dst, const double *src, double c, size_t n)
{
    const __m128d vc = _mm_set1_pd(c);
    size_t i = 0;
    for (; i + 2 <= n; i += 2)
        _mm_storeu_pd(dst + i,
                      _mm_mul_pd(vc, _mm_loadu_pd(src + i)));
    for (; i < n; ++i)
        dst[i] = c * src[i];
}

void
sse2Axpy(double *dst, const double *src, double c, size_t n)
{
    const __m128d vc = _mm_set1_pd(c);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_add_pd(
            _mm_loadu_pd(dst + i),
            _mm_mul_pd(vc, _mm_loadu_pd(src + i)));
        _mm_storeu_pd(dst + i, v);
    }
    for (; i < n; ++i)
        dst[i] += c * src[i];
}

void
sse2DotPacked(const double *a, const double *packed, size_t n,
              double *out)
{
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    __m128d acc2 = _mm_setzero_pd();
    __m128d acc3 = _mm_setzero_pd();
    for (size_t k = 0; k < n; ++k) {
        const __m128d ak = _mm_set1_pd(a[k]);
        const double *col = packed + k * simdPackWidth;
        acc0 = _mm_add_pd(acc0,
                          _mm_mul_pd(ak, _mm_loadu_pd(col + 0)));
        acc1 = _mm_add_pd(acc1,
                          _mm_mul_pd(ak, _mm_loadu_pd(col + 2)));
        acc2 = _mm_add_pd(acc2,
                          _mm_mul_pd(ak, _mm_loadu_pd(col + 4)));
        acc3 = _mm_add_pd(acc3,
                          _mm_mul_pd(ak, _mm_loadu_pd(col + 6)));
    }
    _mm_storeu_pd(out + 0, acc0);
    _mm_storeu_pd(out + 2, acc1);
    _mm_storeu_pd(out + 4, acc2);
    _mm_storeu_pd(out + 6, acc3);
}

void
sse2SquaredNormsPacked(const double *packed, size_t n, double *out)
{
    __m128d acc0 = _mm_setzero_pd();
    __m128d acc1 = _mm_setzero_pd();
    __m128d acc2 = _mm_setzero_pd();
    __m128d acc3 = _mm_setzero_pd();
    for (size_t k = 0; k < n; ++k) {
        const double *col = packed + k * simdPackWidth;
        const __m128d c0 = _mm_loadu_pd(col + 0);
        const __m128d c1 = _mm_loadu_pd(col + 2);
        const __m128d c2 = _mm_loadu_pd(col + 4);
        const __m128d c3 = _mm_loadu_pd(col + 6);
        acc0 = _mm_add_pd(acc0, _mm_mul_pd(c0, c0));
        acc1 = _mm_add_pd(acc1, _mm_mul_pd(c1, c1));
        acc2 = _mm_add_pd(acc2, _mm_mul_pd(c2, c2));
        acc3 = _mm_add_pd(acc3, _mm_mul_pd(c3, c3));
    }
    _mm_storeu_pd(out + 0, acc0);
    _mm_storeu_pd(out + 2, acc1);
    _mm_storeu_pd(out + 4, acc2);
    _mm_storeu_pd(out + 6, acc3);
}

void
sse2ZScore(double *dst, const double *src, double mu, double sigma,
           size_t n)
{
    const __m128d vmu = _mm_set1_pd(mu);
    const __m128d vsigma = _mm_set1_pd(sigma);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128d v = _mm_div_pd(
            _mm_sub_pd(_mm_loadu_pd(src + i), vmu), vsigma);
        _mm_storeu_pd(dst + i, v);
    }
    for (; i < n; ++i)
        dst[i] = (src[i] - mu) / sigma;
}

void
sse2MaxMinSumPacked(const double *packed, size_t n, double *maxOut,
                    double *minOut, double *sumOut)
{
    // _mm_max_pd(v, acc) keeps acc on ties (including -0.0 vs 0.0),
    // matching std::max_element's update-only-if-strictly-greater;
    // same for min.
    __m128d mx0 = _mm_loadu_pd(packed + 0);
    __m128d mx1 = _mm_loadu_pd(packed + 2);
    __m128d mx2 = _mm_loadu_pd(packed + 4);
    __m128d mx3 = _mm_loadu_pd(packed + 6);
    __m128d mn0 = mx0, mn1 = mx1, mn2 = mx2, mn3 = mx3;
    __m128d sm0 = _mm_setzero_pd();
    __m128d sm1 = _mm_setzero_pd();
    __m128d sm2 = _mm_setzero_pd();
    __m128d sm3 = _mm_setzero_pd();
    for (size_t i = 0; i < n; ++i) {
        const double *row = packed + i * simdPackWidth;
        const __m128d v0 = _mm_loadu_pd(row + 0);
        const __m128d v1 = _mm_loadu_pd(row + 2);
        const __m128d v2 = _mm_loadu_pd(row + 4);
        const __m128d v3 = _mm_loadu_pd(row + 6);
        mx0 = _mm_max_pd(v0, mx0);
        mx1 = _mm_max_pd(v1, mx1);
        mx2 = _mm_max_pd(v2, mx2);
        mx3 = _mm_max_pd(v3, mx3);
        mn0 = _mm_min_pd(v0, mn0);
        mn1 = _mm_min_pd(v1, mn1);
        mn2 = _mm_min_pd(v2, mn2);
        mn3 = _mm_min_pd(v3, mn3);
        sm0 = _mm_add_pd(sm0, v0);
        sm1 = _mm_add_pd(sm1, v1);
        sm2 = _mm_add_pd(sm2, v2);
        sm3 = _mm_add_pd(sm3, v3);
    }
    _mm_storeu_pd(maxOut + 0, mx0);
    _mm_storeu_pd(maxOut + 2, mx1);
    _mm_storeu_pd(maxOut + 4, mx2);
    _mm_storeu_pd(maxOut + 6, mx3);
    _mm_storeu_pd(minOut + 0, mn0);
    _mm_storeu_pd(minOut + 2, mn1);
    _mm_storeu_pd(minOut + 4, mn2);
    _mm_storeu_pd(minOut + 6, mn3);
    _mm_storeu_pd(sumOut + 0, sm0);
    _mm_storeu_pd(sumOut + 2, sm1);
    _mm_storeu_pd(sumOut + 4, sm2);
    _mm_storeu_pd(sumOut + 6, sm3);
}

void
sse2CenteredSquareSumPacked(const double *packed, size_t n,
                            const double *mu, double *accOut)
{
    const __m128d mu0 = _mm_loadu_pd(mu + 0);
    const __m128d mu1 = _mm_loadu_pd(mu + 2);
    const __m128d mu2 = _mm_loadu_pd(mu + 4);
    const __m128d mu3 = _mm_loadu_pd(mu + 6);
    __m128d a0 = _mm_setzero_pd();
    __m128d a1 = _mm_setzero_pd();
    __m128d a2 = _mm_setzero_pd();
    __m128d a3 = _mm_setzero_pd();
    for (size_t i = 0; i < n; ++i) {
        const double *row = packed + i * simdPackWidth;
        const __m128d d0 = _mm_sub_pd(_mm_loadu_pd(row + 0), mu0);
        const __m128d d1 = _mm_sub_pd(_mm_loadu_pd(row + 2), mu1);
        const __m128d d2 = _mm_sub_pd(_mm_loadu_pd(row + 4), mu2);
        const __m128d d3 = _mm_sub_pd(_mm_loadu_pd(row + 6), mu3);
        a0 = _mm_add_pd(a0, _mm_mul_pd(d0, d0));
        a1 = _mm_add_pd(a1, _mm_mul_pd(d1, d1));
        a2 = _mm_add_pd(a2, _mm_mul_pd(d2, d2));
        a3 = _mm_add_pd(a3, _mm_mul_pd(d3, d3));
    }
    _mm_storeu_pd(accOut + 0, a0);
    _mm_storeu_pd(accOut + 2, a1);
    _mm_storeu_pd(accOut + 4, a2);
    _mm_storeu_pd(accOut + 6, a3);
}

void
sse2SignCrossingsPacked(const double *packed, size_t n, double *out)
{
    // cmplt masks are all-ones where the sample is negative; XOR of
    // consecutive masks marks a sign change, and subtracting the
    // -1/0 lanes from integer counters counts them exactly.
    const __m128d zero = _mm_setzero_pd();
    __m128i c0 = _mm_setzero_si128();
    __m128i c1 = _mm_setzero_si128();
    __m128i c2 = _mm_setzero_si128();
    __m128i c3 = _mm_setzero_si128();
    __m128d p0 = _mm_cmplt_pd(_mm_loadu_pd(packed + 0), zero);
    __m128d p1 = _mm_cmplt_pd(_mm_loadu_pd(packed + 2), zero);
    __m128d p2 = _mm_cmplt_pd(_mm_loadu_pd(packed + 4), zero);
    __m128d p3 = _mm_cmplt_pd(_mm_loadu_pd(packed + 6), zero);
    for (size_t i = 1; i < n; ++i) {
        const double *row = packed + i * simdPackWidth;
        const __m128d q0 =
            _mm_cmplt_pd(_mm_loadu_pd(row + 0), zero);
        const __m128d q1 =
            _mm_cmplt_pd(_mm_loadu_pd(row + 2), zero);
        const __m128d q2 =
            _mm_cmplt_pd(_mm_loadu_pd(row + 4), zero);
        const __m128d q3 =
            _mm_cmplt_pd(_mm_loadu_pd(row + 6), zero);
        c0 = _mm_sub_epi64(c0,
                           _mm_castpd_si128(_mm_xor_pd(p0, q0)));
        c1 = _mm_sub_epi64(c1,
                           _mm_castpd_si128(_mm_xor_pd(p1, q1)));
        c2 = _mm_sub_epi64(c2,
                           _mm_castpd_si128(_mm_xor_pd(p2, q2)));
        c3 = _mm_sub_epi64(c3,
                           _mm_castpd_si128(_mm_xor_pd(p3, q3)));
        p0 = q0;
        p1 = q1;
        p2 = q2;
        p3 = q3;
    }
    long long counts[simdPackWidth];
    _mm_storeu_si128(reinterpret_cast<__m128i *>(counts + 0), c0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(counts + 2), c1);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(counts + 4), c2);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(counts + 6), c3);
    for (size_t j = 0; j < simdPackWidth; ++j)
        out[j] = static_cast<double>(counts[j]);
}

void
sse2Moment34Packed(const double *packed, size_t n, const double *mu,
                   const double *sigma, double *acc3, double *acc4)
{
    const __m128d mu0 = _mm_loadu_pd(mu + 0);
    const __m128d mu1 = _mm_loadu_pd(mu + 2);
    const __m128d mu2 = _mm_loadu_pd(mu + 4);
    const __m128d mu3 = _mm_loadu_pd(mu + 6);
    const __m128d sg0 = _mm_loadu_pd(sigma + 0);
    const __m128d sg1 = _mm_loadu_pd(sigma + 2);
    const __m128d sg2 = _mm_loadu_pd(sigma + 4);
    const __m128d sg3 = _mm_loadu_pd(sigma + 6);
    __m128d a30 = _mm_setzero_pd(), a31 = _mm_setzero_pd();
    __m128d a32 = _mm_setzero_pd(), a33 = _mm_setzero_pd();
    __m128d a40 = _mm_setzero_pd(), a41 = _mm_setzero_pd();
    __m128d a42 = _mm_setzero_pd(), a43 = _mm_setzero_pd();
    for (size_t i = 0; i < n; ++i) {
        const double *row = packed + i * simdPackWidth;
        const __m128d z0 = _mm_div_pd(
            _mm_sub_pd(_mm_loadu_pd(row + 0), mu0), sg0);
        const __m128d z1 = _mm_div_pd(
            _mm_sub_pd(_mm_loadu_pd(row + 2), mu1), sg1);
        const __m128d z2 = _mm_div_pd(
            _mm_sub_pd(_mm_loadu_pd(row + 4), mu2), sg2);
        const __m128d z3 = _mm_div_pd(
            _mm_sub_pd(_mm_loadu_pd(row + 6), mu3), sg3);
        const __m128d c0 =
            _mm_mul_pd(_mm_mul_pd(z0, z0), z0);
        const __m128d c1 =
            _mm_mul_pd(_mm_mul_pd(z1, z1), z1);
        const __m128d c2 =
            _mm_mul_pd(_mm_mul_pd(z2, z2), z2);
        const __m128d c3 =
            _mm_mul_pd(_mm_mul_pd(z3, z3), z3);
        a30 = _mm_add_pd(a30, c0);
        a31 = _mm_add_pd(a31, c1);
        a32 = _mm_add_pd(a32, c2);
        a33 = _mm_add_pd(a33, c3);
        a40 = _mm_add_pd(a40, _mm_mul_pd(c0, z0));
        a41 = _mm_add_pd(a41, _mm_mul_pd(c1, z1));
        a42 = _mm_add_pd(a42, _mm_mul_pd(c2, z2));
        a43 = _mm_add_pd(a43, _mm_mul_pd(c3, z3));
    }
    _mm_storeu_pd(acc3 + 0, a30);
    _mm_storeu_pd(acc3 + 2, a31);
    _mm_storeu_pd(acc3 + 4, a32);
    _mm_storeu_pd(acc3 + 6, a33);
    _mm_storeu_pd(acc4 + 0, a40);
    _mm_storeu_pd(acc4 + 2, a41);
    _mm_storeu_pd(acc4 + 4, a42);
    _mm_storeu_pd(acc4 + 6, a43);
}

#endif // XPRO_SIMD_X86

struct Backend
{
    const char *name;
    void (*scale)(double *, const double *, double, size_t);
    void (*axpy)(double *, const double *, double, size_t);
    void (*dotPacked)(const double *, const double *, size_t,
                      double *);
    void (*squaredNormsPacked)(const double *, size_t, double *);
    void (*zscore)(double *, const double *, double, double, size_t);
    void (*maxMinSumPacked)(const double *, size_t, double *,
                            double *, double *);
    void (*centeredSquareSumPacked)(const double *, size_t,
                                    const double *, double *);
    void (*signCrossingsPacked)(const double *, size_t, double *);
    void (*moment34Packed)(const double *, size_t, const double *,
                           const double *, double *, double *);
};

Backend
pickBackend()
{
#if XPRO_SIMD_AVX2_AVAILABLE
    if (__builtin_cpu_supports("avx2")) {
        return {"avx2", detail::avx2Scale, detail::avx2Axpy,
                detail::avx2DotPacked,
                detail::avx2SquaredNormsPacked, detail::avx2ZScore,
                detail::avx2MaxMinSumPacked,
                detail::avx2CenteredSquareSumPacked,
                detail::avx2SignCrossingsPacked,
                detail::avx2Moment34Packed};
    }
#endif
#if XPRO_SIMD_X86
    return {"sse2", sse2Scale, sse2Axpy, sse2DotPacked,
            sse2SquaredNormsPacked, sse2ZScore,
            sse2MaxMinSumPacked, sse2CenteredSquareSumPacked,
            sse2SignCrossingsPacked, sse2Moment34Packed};
#else
    return {"generic", scalar_ref::scale, scalar_ref::axpy,
            genericDotPacked, genericSquaredNormsPacked,
            scalar_ref::zscore, scalar_ref::maxMinSumPacked,
            scalar_ref::centeredSquareSumPacked,
            scalar_ref::signCrossingsPacked,
            scalar_ref::moment34Packed};
#endif
}

const Backend &
backend()
{
    static const Backend chosen = pickBackend();
    return chosen;
}

} // namespace

const char *
simdBackendName()
{
    return backend().name;
}

void
simdScale(double *dst, const double *src, double c, size_t n)
{
    backend().scale(dst, src, c, n);
}

void
simdAxpy(double *dst, const double *src, double c, size_t n)
{
    backend().axpy(dst, src, c, n);
}

void
simdDotPacked(const double *a, const double *packed, size_t n,
              double *out)
{
    backend().dotPacked(a, packed, n, out);
}

void
simdSquaredNormsPacked(const double *packed, size_t n, double *out)
{
    backend().squaredNormsPacked(packed, n, out);
}

void
simdZScore(double *dst, const double *src, double mu, double sigma,
           size_t n)
{
    backend().zscore(dst, src, mu, sigma, n);
}

void
simdMaxMinSumPacked(const double *packed, size_t n, double *maxOut,
                    double *minOut, double *sumOut)
{
    backend().maxMinSumPacked(packed, n, maxOut, minOut, sumOut);
}

void
simdCenteredSquareSumPacked(const double *packed, size_t n,
                            const double *mu, double *accOut)
{
    backend().centeredSquareSumPacked(packed, n, mu, accOut);
}

void
simdSignCrossingsPacked(const double *packed, size_t n, double *out)
{
    backend().signCrossingsPacked(packed, n, out);
}

void
simdMoment34Packed(const double *packed, size_t n, const double *mu,
                   const double *sigma, double *acc3, double *acc4)
{
    backend().moment34Packed(packed, n, mu, sigma, acc3, acc4);
}

void
simdPackRows(const double *const *rows, size_t count, size_t n,
             double *packed)
{
    for (size_t k = 0; k < n; ++k) {
        double *col = packed + k * simdPackWidth;
        size_t j = 0;
        for (; j < count; ++j)
            col[j] = rows[j][k];
        for (; j < simdPackWidth; ++j)
            col[j] = 0.0;
    }
}

} // namespace xpro
