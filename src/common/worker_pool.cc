#include "common/worker_pool.hh"

#include <ctime>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/stats_registry.hh"

namespace xpro
{

namespace
{

// Diag scope: how many pool runs happen and how many tasks each
// carries depends on the shard/worker configuration, not just the
// simulated workload.
struct PoolStatIds
{
    StatId runs, tasks, depth;
};

const PoolStatIds &
poolStatIds()
{
    static const PoolStatIds ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        const StatScope d = StatScope::Diag;
        return PoolStatIds{
            reg.registerCounter("worker_pool.runs", d),
            reg.registerCounter("worker_pool.tasks", d),
            reg.registerGauge("worker_pool.queue_depth_highwater",
                              d)};
    }();
    return ids;
}

using Clock = std::chrono::steady_clock;

Time
elapsed(Clock::time_point from, Clock::time_point to)
{
    return Time::seconds(
        std::chrono::duration<double>(to - from).count());
}

/** The calling thread's consumed CPU time. */
Time
threadCpuTime()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return Time::seconds(static_cast<double>(ts.tv_sec) +
                             1e-9 *
                                 static_cast<double>(ts.tv_nsec));
    }
#endif
    // Fallback: wall clock (overstates busy time under
    // timesharing, but keeps the accounting monotone).
    return Time::seconds(std::chrono::duration<double>(
                             Clock::now().time_since_epoch())
                             .count());
}

} // namespace

size_t
resolveWorkerCount(size_t requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

WorkerPool::WorkerPool(size_t workers)
    : _workers(workers == 0 ? 1 : workers)
{}

void
WorkerPool::run(size_t count, const Task &task)
{
    _busy.assign(_workers, Time());
    _wall = Time();
    if (count == 0)
        return;

    if constexpr (kStatsEnabled) {
        StatsRegistry &reg = StatsRegistry::instance();
        const PoolStatIds &ids = poolStatIds();
        reg.add(ids.runs);
        reg.add(ids.tasks, count);
        reg.gaugeMax(ids.depth, count);
    }

    std::atomic<size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const auto worker = [&](size_t worker_index) {
        const Time started = threadCpuTime();
        for (;;) {
            const size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                break;
            try {
                task(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                break;
            }
        }
        _busy[worker_index] = threadCpuTime() - started;
    };

    const Clock::time_point started = Clock::now();
    if (_workers == 1) {
        worker(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(_workers);
        for (size_t w = 0; w < _workers; ++w)
            threads.emplace_back(worker, w);
        for (std::thread &thread : threads)
            thread.join();
    }
    _wall = elapsed(started, Clock::now());

    if (first_error)
        std::rethrow_exception(first_error);
}

Time
WorkerPool::lastWork() const
{
    Time total;
    for (Time t : _busy)
        total += t;
    return total;
}

Time
WorkerPool::lastMakespan() const
{
    Time longest;
    for (Time t : _busy)
        longest = std::max(longest, t);
    return longest;
}

} // namespace xpro
