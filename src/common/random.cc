#include "common/random.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/** splitmix64, used to expand the single seed into the full state. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : _state)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 top bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::below(uint64_t n)
{
    xproAssert(n > 0, "below() requires n > 0");
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = ~uint64_t{0} - ~uint64_t{0} % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

int64_t
Rng::range(int64_t lo, int64_t hi)
{
    xproAssert(lo <= hi, "range() requires lo <= hi");
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(below(span));
}

double
Rng::gaussian()
{
    if (_hasCachedGaussian) {
        _hasCachedGaussian = false;
        return _cachedGaussian;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    _cachedGaussian = radius * std::sin(angle);
    _hasCachedGaussian = true;
    return radius * std::cos(angle);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

std::vector<size_t>
Rng::sampleWithoutReplacement(size_t n, size_t k)
{
    xproAssert(k <= n, "cannot draw %zu items from a pool of %zu", k, n);
    std::vector<size_t> pool(n);
    for (size_t i = 0; i < n; ++i)
        pool[i] = i;
    // Partial Fisher-Yates: after k swaps the first k slots are the
    // sample.
    for (size_t i = 0; i < k; ++i) {
        const size_t j = i + static_cast<size_t>(below(n - i));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

} // namespace xpro
