/**
 * @file
 * Small dense matrix with the linear-algebra kernels the reproduction
 * needs: products, transpose, Gaussian-elimination solve and ridge
 * least squares (used to train the weighted-voting score fusion of
 * the random-subspace classifier).
 *
 * Also the flat row-major sample storage of the ML hot path:
 * RowView (a non-owning view of one contiguous row) and FlatMatrix
 * (equal-length rows in one contiguous buffer, growable by row, with
 * a blocked GEMM-style row-by-row product). The classifier's Gram
 * matrices, support vectors and datasets all live in FlatMatrix so
 * kernel evaluations stream contiguous memory instead of chasing one
 * heap allocation per sample.
 */

#ifndef XPRO_COMMON_MATRIX_HH
#define XPRO_COMMON_MATRIX_HH

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace xpro
{

/**
 * Non-owning const view of one contiguous row of doubles.
 *
 * Converts implicitly from std::vector<double> and from a braced
 * initializer list, so call sites can pass either where a row is
 * expected. A view never owns its storage: keep the source alive for
 * the lifetime of the view (initializer-list views are only valid
 * within the full expression that created them).
 */
class RowView
{
  public:
    RowView() = default;
    RowView(const double *data, size_t size)
        : _data(data), _size(size)
    {
    }
    RowView(const std::vector<double> &values)
        : _data(values.data()), _size(values.size())
    {
    }
    RowView(std::initializer_list<double> values)
        : _data(values.begin()), _size(values.size())
    {
    }

    const double *data() const { return _data; }
    size_t size() const { return _size; }
    bool empty() const { return _size == 0; }

    double operator[](size_t i) const { return _data[i]; }

    const double *begin() const { return _data; }
    const double *end() const { return _data + _size; }

    /** Materialize an owning copy. */
    std::vector<double>
    toVector() const
    {
        return {_data, _data + _size};
    }

  private:
    const double *_data = nullptr;
    size_t _size = 0;
};

/**
 * Flat row-major matrix of equal-length rows, growable one row at a
 * time. The column count is fixed by the first row pushed (or the
 * constructor); every later row must match it.
 *
 * The growable surface mirrors std::vector<std::vector<double>>
 * (push_back / size / reserve / operator[] / iteration) so row
 * containers can move onto contiguous storage without rewriting
 * their call sites; operator[] and iteration yield RowView.
 */
class FlatMatrix
{
  public:
    FlatMatrix() = default;

    /** A rows x cols matrix initialized to @p fill. */
    FlatMatrix(size_t rows, size_t cols, double fill = 0.0);

    /** Build from nested initializer lists (row major). */
    FlatMatrix(
        std::initializer_list<std::initializer_list<double>> rows);

    /** Copy from a vector-of-vectors row container. */
    static FlatMatrix
    fromRows(const std::vector<std::vector<double>> &rows);

    /** Number of rows. */
    size_t size() const { return _rows; }
    /** Number of columns (0 until the first row is pushed). */
    size_t cols() const { return _cols; }
    bool empty() const { return _rows == 0; }

    void reserve(size_t rows) { _data.reserve(rows * _cols); }

    /** Append a row; its length must match cols() once set. */
    void push_back(RowView row);

    RowView row(size_t i) const
    {
        return {_data.data() + i * _cols, _cols};
    }
    RowView operator[](size_t i) const { return row(i); }

    /** Mutable pointer to the start of row @p i. */
    double *rowData(size_t i) { return _data.data() + i * _cols; }
    const double *rowData(size_t i) const
    {
        return _data.data() + i * _cols;
    }

    /** The whole row-major buffer. */
    const std::vector<double> &flat() const { return _data; }

    bool operator==(const FlatMatrix &) const = default;

    /** Const forward iterator yielding RowView per row. */
    class ConstIterator
    {
      public:
        ConstIterator(const FlatMatrix *m, size_t row)
            : _m(m), _row(row)
        {
        }
        RowView operator*() const { return _m->row(_row); }
        ConstIterator &
        operator++()
        {
            ++_row;
            return *this;
        }
        bool
        operator!=(const ConstIterator &other) const
        {
            return _row != other._row;
        }
        bool
        operator==(const ConstIterator &other) const
        {
            return _row == other._row;
        }

      private:
        const FlatMatrix *_m;
        size_t _row;
    };

    ConstIterator begin() const { return {this, 0}; }
    ConstIterator end() const { return {this, _rows}; }

    /**
     * Blocked GEMM-style product with a transposed right-hand side:
     * out(i, j) = dot(this->row(i), other.row(j)). This is the
     * cross-product step of batched kernel evaluation. Each output
     * entry accumulates left-to-right over the shared dimension in a
     * single accumulator — bit-identical to dotProduct() — while
     * tiles of simdPackWidth right-hand rows are transposed into the
     * packed layout and evaluated with the SIMD multi-dot
     * micro-kernel (common/simd.hh), vectorizing across outputs
     * without reordering any reduction.
     */
    FlatMatrix multiplyTransposed(const FlatMatrix &other) const;

    /** Per-row squared Euclidean norms (left-to-right sums). */
    std::vector<double> rowSquaredNorms() const;

  private:
    size_t _rows = 0;
    size_t _cols = 0;
    std::vector<double> _data;
};

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Construct an empty (0 x 0) matrix. */
    Matrix() : _rows(0), _cols(0) {}

    /** Construct a rows x cols matrix initialized to @p fill. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /** Identity matrix of order n. */
    static Matrix identity(size_t n);

    /** Build a column vector from @p values. */
    static Matrix columnVector(const std::vector<double> &values);

    size_t rows() const { return _rows; }
    size_t cols() const { return _cols; }

    double &at(size_t r, size_t c) { return _data[r * _cols + c]; }
    double at(size_t r, size_t c) const { return _data[r * _cols + c]; }

    double &operator()(size_t r, size_t c) { return at(r, c); }
    double operator()(size_t r, size_t c) const { return at(r, c); }

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(double scalar) const;

    Matrix transpose() const;

    /** Frobenius norm. */
    double norm() const;

    /** Flatten to a std::vector (row-major). */
    std::vector<double> flatten() const;

    /**
     * Solve A x = b by Gaussian elimination with partial pivoting.
     * A must be square and non-singular; b must be a column vector of
     * matching size. Calls fatal() on singular systems.
     */
    static Matrix solve(Matrix a, Matrix b);

    /**
     * Ridge least squares: minimize |A x - b|^2 + ridge * |x|^2 via
     * the normal equations. With ridge == 0 this is ordinary least
     * squares; a small positive ridge keeps near-collinear ensemble
     * score columns well-conditioned.
     */
    static Matrix
    leastSquares(const Matrix &a, const Matrix &b, double ridge = 0.0);

  private:
    size_t _rows;
    size_t _cols;
    std::vector<double> _data;
};

} // namespace xpro

#endif // XPRO_COMMON_MATRIX_HH
