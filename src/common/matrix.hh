/**
 * @file
 * Small dense matrix with the linear-algebra kernels the reproduction
 * needs: products, transpose, Gaussian-elimination solve and ridge
 * least squares (used to train the weighted-voting score fusion of
 * the random-subspace classifier).
 */

#ifndef XPRO_COMMON_MATRIX_HH
#define XPRO_COMMON_MATRIX_HH

#include <cstddef>
#include <vector>

namespace xpro
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    /** Construct an empty (0 x 0) matrix. */
    Matrix() : _rows(0), _cols(0) {}

    /** Construct a rows x cols matrix initialized to @p fill. */
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    /** Identity matrix of order n. */
    static Matrix identity(size_t n);

    /** Build a column vector from @p values. */
    static Matrix columnVector(const std::vector<double> &values);

    size_t rows() const { return _rows; }
    size_t cols() const { return _cols; }

    double &at(size_t r, size_t c) { return _data[r * _cols + c]; }
    double at(size_t r, size_t c) const { return _data[r * _cols + c]; }

    double &operator()(size_t r, size_t c) { return at(r, c); }
    double operator()(size_t r, size_t c) const { return at(r, c); }

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix operator*(const Matrix &other) const;
    Matrix operator*(double scalar) const;

    Matrix transpose() const;

    /** Frobenius norm. */
    double norm() const;

    /** Flatten to a std::vector (row-major). */
    std::vector<double> flatten() const;

    /**
     * Solve A x = b by Gaussian elimination with partial pivoting.
     * A must be square and non-singular; b must be a column vector of
     * matching size. Calls fatal() on singular systems.
     */
    static Matrix solve(Matrix a, Matrix b);

    /**
     * Ridge least squares: minimize |A x - b|^2 + ridge * |x|^2 via
     * the normal equations. With ridge == 0 this is ordinary least
     * squares; a small positive ridge keeps near-collinear ensemble
     * score columns well-conditioned.
     */
    static Matrix
    leastSquares(const Matrix &a, const Matrix &b, double ridge = 0.0);

  private:
    size_t _rows;
    size_t _cols;
    std::vector<double> _data;
};

} // namespace xpro

#endif // XPRO_COMMON_MATRIX_HH
