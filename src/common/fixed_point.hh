/**
 * @file
 * Q16.16 fixed-point arithmetic.
 *
 * The paper's functional cells use "32-bit fixed-number with 16-bit
 * integer and 16-bit decimals" (Section 4.4). This type models that
 * datapath exactly: a signed 32-bit container with 16 fractional
 * bits, saturating arithmetic, and hardware-realistic sqrt and
 * reciprocal so the fixed-point feature cells compute the same values
 * the in-sensor ASIC would.
 */

#ifndef XPRO_COMMON_FIXED_POINT_HH
#define XPRO_COMMON_FIXED_POINT_HH

#include <compare>
#include <cstdint>
#include <limits>

namespace xpro
{

/** Signed Q16.16 saturating fixed-point number. */
class Fixed
{
  public:
    /** Number of fractional bits. */
    static constexpr int fracBits = 16;
    /** Scale factor 2^fracBits. */
    static constexpr int64_t one = int64_t{1} << fracBits;

    constexpr Fixed() : _raw(0) {}

    /** Convert from double, rounding to nearest and saturating. */
    static constexpr Fixed
    fromDouble(double v)
    {
        const double scaled = v * static_cast<double>(one);
        const double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
        return Fixed(saturate(static_cast<int64_t>(rounded)));
    }

    /** Convert from an integer value, saturating. */
    static constexpr Fixed
    fromInt(int32_t v)
    {
        return Fixed(saturate(static_cast<int64_t>(v) << fracBits));
    }

    /** Reinterpret a raw Q16.16 bit pattern. */
    static constexpr Fixed fromRaw(int32_t raw) { return Fixed(raw); }

    /** Largest representable value. */
    static constexpr Fixed
    max()
    {
        return Fixed(std::numeric_limits<int32_t>::max());
    }

    /** Smallest (most negative) representable value. */
    static constexpr Fixed
    min()
    {
        return Fixed(std::numeric_limits<int32_t>::min());
    }

    constexpr int32_t raw() const { return _raw; }

    constexpr double
    toDouble() const
    {
        return static_cast<double>(_raw) / static_cast<double>(one);
    }

    /** Truncate toward negative infinity to an integer. */
    constexpr int32_t
    toInt() const
    {
        return static_cast<int32_t>(_raw >> fracBits);
    }

    constexpr Fixed
    operator+(Fixed o) const
    {
        return Fixed(saturate(static_cast<int64_t>(_raw) + o._raw));
    }

    constexpr Fixed
    operator-(Fixed o) const
    {
        return Fixed(saturate(static_cast<int64_t>(_raw) - o._raw));
    }

    constexpr Fixed operator-() const { return Fixed(saturate(-static_cast<int64_t>(_raw))); }

    constexpr Fixed
    operator*(Fixed o) const
    {
        const int64_t prod = static_cast<int64_t>(_raw) * o._raw;
        // Round to nearest before dropping the extra fractional bits.
        const int64_t rounding = int64_t{1} << (fracBits - 1);
        return Fixed(saturate((prod + rounding) >> fracBits));
    }

    constexpr Fixed
    operator/(Fixed o) const
    {
        if (o._raw == 0)
            return _raw >= 0 ? max() : min();
        const int64_t num = static_cast<int64_t>(_raw) << fracBits;
        return Fixed(saturate(num / o._raw));
    }

    constexpr Fixed &operator+=(Fixed o) { *this = *this + o; return *this; }
    constexpr Fixed &operator-=(Fixed o) { *this = *this - o; return *this; }
    constexpr Fixed &operator*=(Fixed o) { *this = *this * o; return *this; }
    constexpr Fixed &operator/=(Fixed o) { *this = *this / o; return *this; }

    constexpr auto operator<=>(const Fixed &) const = default;

    /** Absolute value (saturating at the most negative input). */
    constexpr Fixed
    abs() const
    {
        return _raw < 0 ? -*this : *this;
    }

    /**
     * Fixed-point square root of a non-negative value, computed with
     * the non-restoring bit-by-bit algorithm a hardware sqrt unit
     * uses. Negative inputs return zero.
     */
    Fixed sqrt() const;

  private:
    explicit constexpr Fixed(int64_t raw)
        : _raw(static_cast<int32_t>(raw))
    {}

    static constexpr int64_t
    saturate(int64_t v)
    {
        if (v > std::numeric_limits<int32_t>::max())
            return std::numeric_limits<int32_t>::max();
        if (v < std::numeric_limits<int32_t>::min())
            return std::numeric_limits<int32_t>::min();
        return v;
    }

    int32_t _raw;
};

} // namespace xpro

#endif // XPRO_COMMON_FIXED_POINT_HH
