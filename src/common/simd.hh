/**
 * @file
 * Portable SIMD kernels for the serving hot path.
 *
 * Every kernel here is **order-preserving**: vectorization runs
 * across independent output elements while each output's reduction
 * stays serial left-to-right, so results are bit-identical to the
 * retained scalar references below (and to the pre-SIMD code) on
 * every backend. That is the contract the differential test harness
 * (tests/test_hotpath_identity.cc, ctest label `hotpath`) enforces
 * with *exact* comparisons — no ULP slack needed.
 *
 * The wrapper dispatches at load time: a generic C++ fallback
 * everywhere, hand-written SSE2 intrinsics on x86-64 (baseline ISA,
 * no extra compile flags), and AVX2 intrinsics from a separately
 * compiled translation unit selected with __builtin_cpu_supports()
 * when both the compiler and the host CPU have AVX2. None of the
 * paths uses FMA contraction, so per-lane arithmetic is identical
 * across backends.
 *
 * The workhorse is the packed dot-product micro-kernel: the right
 * operand is transposed into a fixed-width interleaved tile
 * (simdPackWidth columns) so that out[j] += a[k] * packed[k][j]
 * broadcasts one left element against a contiguous vector of right
 * columns. Per output j the accumulation is serial in k — exactly
 * dotProduct()'s schedule — which is how the blocked multiply, the
 * batched RBF Gram and per-sample SVM decisions all stay mutually
 * bit-identical.
 */

#ifndef XPRO_COMMON_SIMD_HH
#define XPRO_COMMON_SIMD_HH

#include <cstddef>

namespace xpro
{

/**
 * Column count of the packed right-operand tile consumed by
 * simdDotPacked(). Pack buffers must be padded (with zeros) to this
 * width; a multiple of every supported vector width.
 */
constexpr size_t simdPackWidth = 8;

/** Name of the dispatched backend: "generic", "sse2" or "avx2". */
const char *simdBackendName();

/** dst[i] = c * src[i] for i in [0, n). */
void simdScale(double *dst, const double *src, double c, size_t n);

/** dst[i] += c * src[i] for i in [0, n). */
void simdAxpy(double *dst, const double *src, double c, size_t n);

/**
 * Packed multi-dot micro-kernel:
 * out[j] = sum_k a[k] * packed[k * simdPackWidth + j] for j in
 * [0, simdPackWidth), each accumulated serially in k (bit-identical
 * to simdPackWidth independent scalarDot() calls on the unpacked
 * columns). @p packed holds @p n interleaved groups of
 * simdPackWidth column values.
 */
void simdDotPacked(const double *a, const double *packed, size_t n,
                   double *out);

/**
 * Packed squared norms: out[j] = sum_k packed[k * simdPackWidth + j]^2
 * for j in [0, simdPackWidth), each accumulated serially in k
 * (bit-identical to simdPackWidth independent scalar squared-norm
 * loops over the unpacked columns).
 */
void simdSquaredNormsPacked(const double *packed, size_t n,
                            double *out);

/**
 * Elementwise z-score: dst[i] = (src[i] - mu) / sigma. Subtraction
 * and division are both exactly rounded under IEEE-754, so the
 * vectorized lanes are bit-identical to the scalar expression — this
 * is the one hot-path kernel that vectorizes a DIVISION (the
 * dominant cost of the skew/kurtosis feature pass) rather than a
 * reduction.
 */
void simdZScore(double *dst, const double *src, double mu,
                double sigma, size_t n);

/*
 * Packed per-lane statistics kernels. These run one independent
 * signal per lane of the simdPackWidth-wide tile layout (the
 * cross-event batching trick: lane j is event j), with every lane's
 * reduction serial left-to-right in i — so lane j's result is
 * bit-identical to running the scalar statistics loop on signal j
 * alone, while the loop-carried dependency chains that bound the
 * per-event path amortize over simdPackWidth events. All
 * simdPackWidth lanes are computed; callers ignore the padding
 * lanes.
 */

/**
 * Per-lane max, min and serial sum in one pass. Max/min update only
 * when the new element strictly compares (ties keep the earlier
 * element, matching std::max_element / std::min_element down to the
 * sign of zero); the sum accumulates serially from 0.0 exactly like
 * featureMean()'s loop.
 */
void simdMaxMinSumPacked(const double *packed, size_t n,
                         double *maxOut, double *minOut,
                         double *sumOut);

/**
 * Per-lane centered square sum: acc[j] = sum_i
 * (packed[i][j] - mu[j])^2, accumulated serially in i — the
 * variance numerator, featureVar()'s exact loop.
 */
void simdCenteredSquareSumPacked(const double *packed, size_t n,
                                 const double *mu, double *accOut);

/**
 * Per-lane zero-crossing count, as a double:
 * (prev < 0) != (cur < 0) over consecutive samples — exactly
 * featureCzero()'s predicate.
 */
void simdSignCrossingsPacked(const double *packed, size_t n,
                             double *out);

/**
 * Per-lane third and fourth standardized moments' numerators:
 * with z = (x - mu[j]) / sigma[j] (exactly rounded, see
 * simdZScore), acc3[j] += (z*z)*z and acc4[j] += ((z*z)*z)*z,
 * serially in i — the association featureSkew()/featureKurt() use.
 * Callers must pre-substitute a safe sigma (e.g. 1.0) for
 * degenerate lanes and discard their outputs.
 */
void simdMoment34Packed(const double *packed, size_t n,
                        const double *mu, const double *sigma,
                        double *acc3, double *acc4);

/**
 * Transpose up to simdPackWidth equal-length rows into the
 * interleaved layout simdDotPacked() consumes:
 * packed[k * simdPackWidth + j] = rows[j][k]. Columns past @p count
 * are zero-filled. @p packed must hold n * simdPackWidth doubles.
 */
void simdPackRows(const double *const *rows, size_t count, size_t n,
                  double *packed);

#if XPRO_SIMD_AVX2_AVAILABLE
/**
 * AVX2 implementations (simd_avx2.cc, compiled with -mavx2).
 * Internal: reached only through the load-time dispatch in simd.cc
 * after a __builtin_cpu_supports("avx2") check.
 */
namespace detail
{

void avx2Scale(double *dst, const double *src, double c, size_t n);
void avx2Axpy(double *dst, const double *src, double c, size_t n);
void avx2DotPacked(const double *a, const double *packed, size_t n,
                   double *out);
void avx2SquaredNormsPacked(const double *packed, size_t n,
                            double *out);
void avx2ZScore(double *dst, const double *src, double mu,
                double sigma, size_t n);
void avx2MaxMinSumPacked(const double *packed, size_t n,
                         double *maxOut, double *minOut,
                         double *sumOut);
void avx2CenteredSquareSumPacked(const double *packed, size_t n,
                                 const double *mu, double *accOut);
void avx2SignCrossingsPacked(const double *packed, size_t n,
                             double *out);
void avx2Moment34Packed(const double *packed, size_t n,
                        const double *mu, const double *sigma,
                        double *acc3, double *acc4);

} // namespace detail
#endif

/**
 * Retained scalar references for the differential tests: plain
 * left-to-right single-accumulator loops, the schedule every SIMD
 * kernel above must reproduce exactly.
 */
namespace scalar_ref
{

double dot(const double *a, const double *b, size_t n);
double squaredNorm(const double *a, size_t n);
void scale(double *dst, const double *src, double c, size_t n);
void axpy(double *dst, const double *src, double c, size_t n);
void zscore(double *dst, const double *src, double mu, double sigma,
            size_t n);
void maxMinSumPacked(const double *packed, size_t n, double *maxOut,
                     double *minOut, double *sumOut);
void centeredSquareSumPacked(const double *packed, size_t n,
                             const double *mu, double *accOut);
void signCrossingsPacked(const double *packed, size_t n,
                         double *out);
void moment34Packed(const double *packed, size_t n, const double *mu,
                    const double *sigma, double *acc3, double *acc4);

} // namespace scalar_ref

} // namespace xpro

#endif // XPRO_COMMON_SIMD_HH
