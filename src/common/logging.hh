/**
 * @file
 * Status and error reporting facilities, modeled after the gem5
 * logging conventions.
 *
 * panic() is for conditions that indicate a bug in XPro itself;
 * fatal() is for user errors (bad configuration, invalid arguments).
 * Both throw typed exceptions so that library embedders and tests can
 * observe them; standalone tools simply let them propagate to main().
 * warn() and inform() report conditions without stopping the run.
 */

#ifndef XPRO_COMMON_LOGGING_HH
#define XPRO_COMMON_LOGGING_HH

#include <stdexcept>
#include <string>

namespace xpro
{

/** Severity level of a log message. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

/** Thrown by fatal(): a user error, the run cannot continue. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Thrown by panic(): an internal XPro bug was detected. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

/**
 * Sink invoked for every warn()/inform() message. Tests may replace
 * it to capture output; the default writes to stderr.
 */
using LogSink = void (*)(LogLevel level, const std::string &message);

/**
 * Install a custom log sink.
 *
 * @param sink New sink, or nullptr to restore the default.
 * @return The previously installed sink.
 */
LogSink setLogSink(LogSink sink);

/**
 * Report a condition that should never happen regardless of user
 * input, i.e. an XPro bug. Throws PanicError.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user error that prevents the run from continuing (bad
 * configuration, invalid arguments). Throws FatalError.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Alert the user to questionable but non-fatal behaviour. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Provide a normal operating status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Implementation hook for xproAssert; formats the failure message
 * and throws PanicError. The condition text is kept out of the
 * format string so its characters are never misparsed as
 * conversions.
 */
[[noreturn]] void panicAssertFailure(const char *condition,
                                     const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Internal assertion for invariants of XPro itself; compiled in all
 * build types.
 */
#define xproAssert(cond, ...)                                          \
    do {                                                               \
        if (!(cond))                                                   \
            ::xpro::panicAssertFailure(#cond, __VA_ARGS__);            \
    } while (0)

} // namespace xpro

#endif // XPRO_COMMON_LOGGING_HH
