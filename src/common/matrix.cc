#include "common/matrix.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.hh"
#include "common/simd.hh"

namespace xpro
{

FlatMatrix::FlatMatrix(size_t rows, size_t cols, double fill)
    : _rows(rows), _cols(cols), _data(rows * cols, fill)
{
}

FlatMatrix::FlatMatrix(
    std::initializer_list<std::initializer_list<double>> rows)
{
    for (const auto &row : rows)
        push_back(RowView(row.begin(), row.size()));
}

FlatMatrix
FlatMatrix::fromRows(const std::vector<std::vector<double>> &rows)
{
    FlatMatrix out;
    if (!rows.empty()) {
        out._cols = rows.front().size();
        out._data.reserve(rows.size() * out._cols);
    }
    for (const auto &row : rows)
        out.push_back(row);
    return out;
}

void
FlatMatrix::push_back(RowView row)
{
    if (_rows == 0 && _cols == 0) {
        _cols = row.size();
    } else {
        xproAssert(row.size() == _cols,
                   "row length %zu does not match matrix width %zu",
                   row.size(), _cols);
    }
    _data.insert(_data.end(), row.begin(), row.end());
    ++_rows;
}

FlatMatrix
FlatMatrix::multiplyTransposed(const FlatMatrix &other) const
{
    if (_rows == 0 || other._rows == 0)
        return FlatMatrix(_rows, other._rows, 0.0);
    xproAssert(_cols == other._cols,
               "shared dimension mismatch in multiplyTransposed: "
               "%zu vs %zu",
               _cols, other._cols);

    FlatMatrix out(_rows, other._rows, 0.0);
    const size_t dims = _cols;
    // Tile over the rows of the right operand: each tile of
    // simdPackWidth right-hand rows is transposed once into the
    // interleaved pack layout, then every left row streams past it
    // through the SIMD multi-dot micro-kernel. Per output the
    // reduction stays serial left-to-right, so results are
    // bit-identical to the scalar dot schedule.
    std::vector<double> packed(dims * simdPackWidth);
    const double *tileRows[simdPackWidth];
    double lane[simdPackWidth];
    for (size_t jb = 0; jb < other._rows; jb += simdPackWidth) {
        const size_t count =
            std::min(simdPackWidth, other._rows - jb);
        for (size_t j = 0; j < count; ++j)
            tileRows[j] = other.rowData(jb + j);
        simdPackRows(tileRows, count, dims, packed.data());
        for (size_t i = 0; i < _rows; ++i) {
            simdDotPacked(rowData(i), packed.data(), dims, lane);
            double *o = out.rowData(i) + jb;
            for (size_t j = 0; j < count; ++j)
                o[j] = lane[j];
        }
    }
    return out;
}

std::vector<double>
FlatMatrix::rowSquaredNorms() const
{
    std::vector<double> norms(_rows);
    std::vector<double> packed(_cols * simdPackWidth);
    const double *tileRows[simdPackWidth];
    double lane[simdPackWidth];
    for (size_t ib = 0; ib < _rows; ib += simdPackWidth) {
        const size_t count = std::min(simdPackWidth, _rows - ib);
        for (size_t i = 0; i < count; ++i)
            tileRows[i] = rowData(ib + i);
        simdPackRows(tileRows, count, _cols, packed.data());
        simdSquaredNormsPacked(packed.data(), _cols, lane);
        for (size_t i = 0; i < count; ++i)
            norms[ib + i] = lane[i];
    }
    return norms;
}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : _rows(rows), _cols(cols), _data(rows * cols, fill)
{
}

Matrix
Matrix::identity(size_t n)
{
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::columnVector(const std::vector<double> &values)
{
    Matrix m(values.size(), 1);
    for (size_t i = 0; i < values.size(); ++i)
        m.at(i, 0) = values[i];
    return m;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    xproAssert(_rows == other._rows && _cols == other._cols,
               "matrix shape mismatch in +");
    Matrix out(_rows, _cols);
    for (size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] + other._data[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    xproAssert(_rows == other._rows && _cols == other._cols,
               "matrix shape mismatch in -");
    Matrix out(_rows, _cols);
    for (size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] - other._data[i];
    return out;
}

Matrix
Matrix::operator*(const Matrix &other) const
{
    xproAssert(_cols == other._rows,
               "matrix shape mismatch in *: %zux%zu by %zux%zu",
               _rows, _cols, other._rows, other._cols);
    Matrix out(_rows, other._cols);
    for (size_t i = 0; i < _rows; ++i) {
        for (size_t k = 0; k < _cols; ++k) {
            const double lhs = at(i, k);
            if (lhs == 0.0)
                continue;
            for (size_t j = 0; j < other._cols; ++j)
                out.at(i, j) += lhs * other.at(k, j);
        }
    }
    return out;
}

Matrix
Matrix::operator*(double scalar) const
{
    Matrix out(_rows, _cols);
    for (size_t i = 0; i < _data.size(); ++i)
        out._data[i] = _data[i] * scalar;
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(_cols, _rows);
    for (size_t i = 0; i < _rows; ++i)
        for (size_t j = 0; j < _cols; ++j)
            out.at(j, i) = at(i, j);
    return out;
}

double
Matrix::norm() const
{
    double sum = 0.0;
    for (double v : _data)
        sum += v * v;
    return std::sqrt(sum);
}

std::vector<double>
Matrix::flatten() const
{
    return _data;
}

Matrix
Matrix::solve(Matrix a, Matrix b)
{
    xproAssert(a._rows == a._cols, "solve() needs a square matrix");
    xproAssert(b._rows == a._rows && b._cols == 1,
               "solve() needs a matching column vector");
    const size_t n = a._rows;

    for (size_t col = 0; col < n; ++col) {
        // Partial pivoting.
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r) {
            if (std::fabs(a.at(r, col)) > std::fabs(a.at(pivot, col)))
                pivot = r;
        }
        if (std::fabs(a.at(pivot, col)) < 1e-12)
            fatal("singular system in Matrix::solve at column %zu", col);
        if (pivot != col) {
            for (size_t j = 0; j < n; ++j)
                std::swap(a.at(col, j), a.at(pivot, j));
            std::swap(b.at(col, 0), b.at(pivot, 0));
        }

        const double diag = a.at(col, col);
        for (size_t r = col + 1; r < n; ++r) {
            const double factor = a.at(r, col) / diag;
            if (factor == 0.0)
                continue;
            for (size_t j = col; j < n; ++j)
                a.at(r, j) -= factor * a.at(col, j);
            b.at(r, 0) -= factor * b.at(col, 0);
        }
    }

    Matrix x(n, 1);
    for (size_t i = n; i-- > 0;) {
        double acc = b.at(i, 0);
        for (size_t j = i + 1; j < n; ++j)
            acc -= a.at(i, j) * x.at(j, 0);
        x.at(i, 0) = acc / a.at(i, i);
    }
    return x;
}

Matrix
Matrix::leastSquares(const Matrix &a, const Matrix &b, double ridge)
{
    xproAssert(a._rows == b._rows && b._cols == 1,
               "leastSquares() shape mismatch");
    const Matrix at_mat = a.transpose();
    Matrix normal = at_mat * a;
    for (size_t i = 0; i < normal.rows(); ++i)
        normal.at(i, i) += ridge;
    const Matrix rhs = at_mat * b;
    return solve(std::move(normal), rhs);
}

} // namespace xpro
