#include "common/arena.hh"

#include <algorithm>

namespace xpro
{

namespace
{

constexpr size_t kAlign = alignof(std::max_align_t);

size_t
roundUp(size_t n)
{
    return (n + kAlign - 1) & ~(kAlign - 1);
}

} // namespace

Arena::Arena(size_t blockBytes) : _blockBytes(roundUp(std::max<size_t>(blockBytes, kAlign)))
{
}

void *
Arena::alloc(size_t bytes)
{
    const size_t need = roundUp(std::max<size_t>(bytes, 1));
    // Advance past blocks too full (or too small) for this request.
    // Skipped tail space is wasted until reset(), which is fine for
    // scratch use; blocks are revisited from the start next cycle.
    while (_currentBlock < _blocks.size()) {
        Block &b = _blocks[_currentBlock];
        if (_cursor + need <= b.storage.size()) {
            void *p = b.storage.data() + _cursor;
            _cursor += need;
            _bytesUsed += need;
            return p;
        }
        ++_currentBlock;
        _cursor = 0;
    }
    // Grow: dedicated block for oversized requests, standard
    // granularity otherwise. This is the only path that touches the
    // heap, and it stops firing once the high-water mark is reached.
    Block &b = _blocks.emplace_back();
    b.storage.resize(std::max(need, _blockBytes));
    _bytesReserved += b.storage.size();
    _cursor = need;
    _bytesUsed += need;
    return b.storage.data();
}

void
Arena::reset()
{
    _currentBlock = 0;
    _cursor = 0;
    _bytesUsed = 0;
}

} // namespace xpro
