#include "common/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace xpro
{

namespace
{

/** Default sink: prepend a severity tag and write to stderr. */
void
defaultSink(LogLevel level, const std::string &message)
{
    const char *tag = "info";
    switch (level) {
      case LogLevel::Inform: tag = "info"; break;
      case LogLevel::Warn:   tag = "warn"; break;
      case LogLevel::Fatal:  tag = "fatal"; break;
      case LogLevel::Panic:  tag = "panic"; break;
    }
    std::fprintf(stderr, "%s: %s\n", tag, message.c_str());
}

// Atomic: setLogSink may race with warn()/inform() calls from
// worker-pool threads (e.g. tests swapping sinks around a parallel
// fleet run), and a plain pointer would be a data race under TSan.
std::atomic<LogSink> currentSink{defaultSink};

/** Fetch the installed sink for one emission. */
LogSink
sink()
{
    return currentSink.load(std::memory_order_acquire);
}

/** Render a printf-style format into a std::string. */
std::string
vformat(const char *fmt, va_list args)
{
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return std::string(fmt);
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    return std::string(buf.data(), static_cast<size_t>(needed));
}

} // namespace

LogSink
setLogSink(LogSink sink)
{
    return currentSink.exchange(sink ? sink : defaultSink,
                                std::memory_order_acq_rel);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    sink()(LogLevel::Panic, msg);
    throw PanicError(msg);
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    sink()(LogLevel::Fatal, msg);
    throw FatalError(msg);
}

void
panicAssertFailure(const char *condition, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = "assertion '" + std::string(condition) +
                      "' failed: " + vformat(fmt, args);
    va_end(args);
    sink()(LogLevel::Panic, msg);
    throw PanicError(msg);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    sink()(LogLevel::Warn, msg);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    std::string msg = vformat(fmt, args);
    va_end(args);
    sink()(LogLevel::Inform, msg);
}

} // namespace xpro
