#include "common/argparse.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace xpro
{

size_t
parsePositiveArg(const std::string &value, const char *what)
{
    char *end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (!end || *end != '\0' || end == value.c_str())
        fatal("%s: '%s' is not a number", what, value.c_str());
    if (parsed <= 0)
        fatal("%s must be positive, got %lld", what, parsed);
    return static_cast<size_t>(parsed);
}

size_t
parseBoundedArg(const std::string &value, const char *what,
                size_t max)
{
    errno = 0;
    char *end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (!end || *end != '\0' || end == value.c_str())
        fatal("%s: '%s' is not a number", what, value.c_str());
    if (errno == ERANGE)
        fatal("%s: '%s' overflows", what, value.c_str());
    if (parsed <= 0)
        fatal("%s must be positive, got %lld", what, parsed);
    if (static_cast<unsigned long long>(parsed) > max) {
        fatal("%s must be at most %zu, got %lld", what, max,
              parsed);
    }
    return static_cast<size_t>(parsed);
}

size_t
parseCountArg(const std::string &value, const char *what)
{
    char *end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (!end || *end != '\0' || end == value.c_str())
        fatal("%s: '%s' is not a number", what, value.c_str());
    if (parsed < 0)
        fatal("%s must be non-negative, got %lld", what, parsed);
    return static_cast<size_t>(parsed);
}

double
parseProbabilityArg(const std::string &value, const char *what)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || end == value.c_str())
        fatal("%s: '%s' is not a number", what, value.c_str());
    if (parsed < 0.0 || parsed >= 1.0)
        fatal("%s must be in [0, 1), got %g", what, parsed);
    return parsed;
}

double
parsePositiveRealArg(const std::string &value, const char *what)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || end == value.c_str())
        fatal("%s: '%s' is not a number", what, value.c_str());
    if (!(parsed > 0.0))
        fatal("%s must be positive, got %g", what, parsed);
    return parsed;
}

double
parseNonNegativeRealArg(const std::string &value, const char *what)
{
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || end == value.c_str())
        fatal("%s: '%s' is not a number", what, value.c_str());
    if (!(parsed >= 0.0))
        fatal("%s must be non-negative, got %g", what, parsed);
    return parsed;
}

uint64_t
parseSeedArg(const std::string &value, const char *what)
{
    char *end = nullptr;
    const long long parsed = std::strtoll(value.c_str(), &end, 10);
    if (!end || *end != '\0' || end == value.c_str())
        fatal("%s: '%s' is not a number", what, value.c_str());
    if (parsed < 0)
        fatal("%s must be non-negative, got %lld", what, parsed);
    return static_cast<uint64_t>(parsed);
}

} // namespace xpro
