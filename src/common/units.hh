/**
 * @file
 * Strong unit types for energy, time and power.
 *
 * All quantities are stored in SI base units (joules, seconds, watts)
 * as doubles, with named factory functions for the magnitudes that
 * appear throughout the paper (pJ/event cell energies, nJ/bit radio
 * energies, ms-scale delays, uW-scale power budgets). The types only
 * allow physically meaningful arithmetic: energy = power * time,
 * power = energy / time, and so on.
 */

#ifndef XPRO_COMMON_UNITS_HH
#define XPRO_COMMON_UNITS_HH

#include <compare>

namespace xpro
{

class Power;
class Energy;

/** A duration, stored in seconds. */
class Time
{
  public:
    constexpr Time() : _seconds(0.0) {}

    static constexpr Time seconds(double s) { return Time(s); }
    static constexpr Time millis(double ms) { return Time(ms * 1e-3); }
    static constexpr Time micros(double us) { return Time(us * 1e-6); }
    static constexpr Time nanos(double ns) { return Time(ns * 1e-9); }
    static constexpr Time hours(double h) { return Time(h * 3600.0); }

    /** Duration of @p cycles clock cycles at @p frequency_hz. */
    static constexpr Time
    cycles(double n, double frequency_hz)
    {
        return Time(n / frequency_hz);
    }

    constexpr double sec() const { return _seconds; }
    constexpr double ms() const { return _seconds * 1e3; }
    constexpr double us() const { return _seconds * 1e6; }
    constexpr double ns() const { return _seconds * 1e9; }
    constexpr double hr() const { return _seconds / 3600.0; }

    constexpr Time operator+(Time o) const { return Time(_seconds + o._seconds); }
    constexpr Time operator-(Time o) const { return Time(_seconds - o._seconds); }
    constexpr Time operator*(double k) const { return Time(_seconds * k); }
    constexpr double operator/(Time o) const { return _seconds / o._seconds; }
    constexpr Time &operator+=(Time o) { _seconds += o._seconds; return *this; }
    constexpr auto operator<=>(const Time &) const = default;

  private:
    explicit constexpr Time(double s) : _seconds(s) {}

    double _seconds;
};

/** An amount of energy, stored in joules. */
class Energy
{
  public:
    constexpr Energy() : _joules(0.0) {}

    static constexpr Energy joules(double j) { return Energy(j); }
    static constexpr Energy millis(double mj) { return Energy(mj * 1e-3); }
    static constexpr Energy micros(double uj) { return Energy(uj * 1e-6); }
    static constexpr Energy nanos(double nj) { return Energy(nj * 1e-9); }
    static constexpr Energy picos(double pj) { return Energy(pj * 1e-12); }

    constexpr double j() const { return _joules; }
    constexpr double mj() const { return _joules * 1e3; }
    constexpr double uj() const { return _joules * 1e6; }
    constexpr double nj() const { return _joules * 1e9; }
    constexpr double pj() const { return _joules * 1e12; }

    constexpr Energy operator+(Energy o) const { return Energy(_joules + o._joules); }
    constexpr Energy operator-(Energy o) const { return Energy(_joules - o._joules); }
    constexpr Energy operator*(double k) const { return Energy(_joules * k); }
    constexpr double operator/(Energy o) const { return _joules / o._joules; }
    constexpr Energy &operator+=(Energy o) { _joules += o._joules; return *this; }
    constexpr auto operator<=>(const Energy &) const = default;

    /** Average power over duration @p t. */
    constexpr Power over(Time t) const;

  private:
    explicit constexpr Energy(double j) : _joules(j) {}

    double _joules;
};

/** A power draw, stored in watts. */
class Power
{
  public:
    constexpr Power() : _watts(0.0) {}

    static constexpr Power watts(double w) { return Power(w); }
    static constexpr Power millis(double mw) { return Power(mw * 1e-3); }
    static constexpr Power micros(double uw) { return Power(uw * 1e-6); }

    constexpr double w() const { return _watts; }
    constexpr double mw() const { return _watts * 1e3; }
    constexpr double uw() const { return _watts * 1e6; }

    constexpr Power operator+(Power o) const { return Power(_watts + o._watts); }
    constexpr Power operator-(Power o) const { return Power(_watts - o._watts); }
    constexpr Power operator*(double k) const { return Power(_watts * k); }
    constexpr double operator/(Power o) const { return _watts / o._watts; }
    constexpr Power &operator+=(Power o) { _watts += o._watts; return *this; }
    constexpr auto operator<=>(const Power &) const = default;

    /** Energy consumed over duration @p t. */
    constexpr Energy
    during(Time t) const
    {
        return Energy::joules(_watts * t.sec());
    }

  private:
    explicit constexpr Power(double w) : _watts(w) {}

    double _watts;
};

constexpr Power
Energy::over(Time t) const
{
    return Power::watts(_joules / t.sec());
}

constexpr Energy operator*(Power p, Time t) { return p.during(t); }
constexpr Energy operator*(Time t, Power p) { return p.during(t); }
constexpr Time operator*(double k, Time t) { return t * k; }
constexpr Energy operator*(double k, Energy e) { return e * k; }
constexpr Power operator*(double k, Power p) { return p * k; }

} // namespace xpro

#endif // XPRO_COMMON_UNITS_HH
