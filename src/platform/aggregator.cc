#include "platform/aggregator.hh"

#include "common/logging.hh"

namespace xpro
{

size_t
AggregatorCpu::opCycles(AluOp op)
{
    // A8-class in-order core: single-cycle ALU, a few cycles for the
    // multiplier, library-call latencies for divide/sqrt/exp, and an
    // average two cycles per memory word (L1 hits with occasional
    // misses amortized).
    switch (op) {
      case AluOp::Add:  return 1;
      case AluOp::Cmp:  return 1;
      case AluOp::Mul:  return 3;
      case AluOp::Div:  return 20;
      case AluOp::Sqrt: return 30;
      case AluOp::Exp:  return 60;
      case AluOp::Buf:  return 2;
    }
    panic("unknown ALU op %d", static_cast<int>(op));
}

Energy
AggregatorCpu::energyPerCycle()
{
    // ~0.5 W at 600 MHz for core plus caches (McPAT-class numbers
    // for a 65-90 nm A8 SoC).
    return Energy::nanos(0.8);
}

SoftwareCosts
AggregatorCpu::run(const CellWorkload &workload) const
{
    size_t cycles = 0;
    for (AluOp op : allAluOps)
        cycles += workload.count(op) * opCycles(op);

    SoftwareCosts costs;
    costs.cycles = cycles;
    costs.delay =
        Time::seconds(static_cast<double>(cycles) / clockHz);
    costs.energy = energyPerCycle() * static_cast<double>(cycles);
    return costs;
}

Time
Aggregator::lifetime(Energy per_event, double events_per_second) const
{
    xproAssert(events_per_second > 0.0,
               "event rate must be positive");
    const Power load =
        _idlePower +
        per_event.over(Time::seconds(1.0 / events_per_second));
    return _battery.lifetime(load);
}

} // namespace xpro
