#include "platform/battery_sim.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xpro
{

ChargeTracker::ChargeTracker(const Battery &battery)
    : _battery(battery), _limit(battery.usableEnergy(Power()))
{}

void
ChargeTracker::drainTo(Time at, Energy energy)
{
    xproAssert(at.sec() >= _now.sec(),
               "timestamps must advance (%f < %f s)", at.sec(),
               _now.sec());
    xproAssert(energy.j() >= 0.0, "negative drain");
    const Time span = at - _now;
    if (span.sec() <= 0.0) {
        xproAssert(energy.j() == 0.0,
                   "instantaneous drain of %f J", energy.j());
        return;
    }
    const Power mean = Power::watts(energy.j() / span.sec());
    _limit = std::min(_limit, _battery.usableEnergy(mean));
    if (!_depleted && _consumed + energy >= _limit &&
        energy.j() > 0.0) {
        const double fraction = (_limit - _consumed) / energy;
        _depleted = true;
        _diedAt = _now + span * std::clamp(fraction, 0.0, 1.0);
        _consumed = _limit;
    } else if (!_depleted) {
        _consumed += energy;
    }
    _lastPower = mean;
    _now = at;
}

double
ChargeTracker::stateOfCharge(Time at) const
{
    xproAssert(at.sec() >= _now.sec(),
               "query at %f s precedes the tracker at %f s",
               at.sec(), _now.sec());
    if (_depleted)
        return 0.0;
    const Energy projected =
        _consumed + _lastPower.during(at - _now);
    if (_limit.j() <= 0.0)
        return 0.0;
    return std::clamp(1.0 - projected / _limit, 0.0, 1.0);
}

Time
ChargeTracker::depletionTime() const
{
    if (!_depleted)
        fatal("battery not depleted; no depletion time");
    return _diedAt;
}

BatterySimulator::BatterySimulator(const Battery &battery, Time step)
    : _battery(battery), _step(step)
{
    xproAssert(step.sec() > 0.0, "step must be positive");
}

DischargeResult
BatterySimulator::run(const std::vector<LoadPhase> &profile,
                      size_t repeat) const
{
    xproAssert(!profile.empty(), "empty load profile");
    xproAssert(repeat > 0, "need at least one pass");

    DischargeResult result;
    Energy consumed;
    Time now;
    // Weakest usable capacity over the profile (for the final DoD).
    Energy weakest = _battery.usableEnergy(profile.front().load);

    for (size_t pass = 0; pass < repeat && !result.depleted; ++pass) {
        for (const LoadPhase &phase : profile) {
            xproAssert(phase.load.w() >= 0.0, "negative load");
            xproAssert(phase.duration.sec() > 0.0,
                       "phase duration must be positive");
            const Energy limit = _battery.usableEnergy(phase.load);
            weakest = std::min(weakest, limit);

            Time left = phase.duration;
            while (left.sec() > 0.0) {
                const Time dt = std::min(left, _step);
                const Energy draw = phase.load.during(dt);
                if (consumed + draw >= limit &&
                    phase.load.w() > 0.0) {
                    // Interpolate the moment of death inside dt.
                    const double fraction =
                        (limit - consumed) / draw;
                    result.depleted = true;
                    result.diedAt =
                        now + dt * std::clamp(fraction, 0.0, 1.0);
                    consumed = limit;
                    break;
                }
                consumed += draw;
                now += dt;
                left = left - dt;
            }
            if (result.depleted)
                break;
        }
    }

    result.remaining = result.depleted ? Energy()
                                       : weakest - consumed;
    result.depthOfDischarge =
        weakest.j() > 0.0
            ? std::min(1.0, consumed / weakest)
            : 1.0;
    return result;
}

Time
BatterySimulator::lifetime(const std::vector<LoadPhase> &profile) const
{
    xproAssert(!profile.empty(), "empty load profile");

    // Energy and duration of one pass.
    Energy pass_energy;
    Time pass_time;
    Energy weakest = _battery.usableEnergy(profile.front().load);
    for (const LoadPhase &phase : profile) {
        pass_energy += phase.load.during(phase.duration);
        pass_time += phase.duration;
        weakest =
            std::min(weakest, _battery.usableEnergy(phase.load));
    }
    if (pass_energy.j() <= 0.0)
        fatal("load profile consumes no energy; lifetime is "
              "unbounded");

    // Fast-forward whole passes, then simulate the final ones.
    const double passes_to_death = weakest / pass_energy;
    const size_t skip =
        passes_to_death > 2.0
            ? static_cast<size_t>(std::floor(passes_to_death - 1.0))
            : 0;
    const Energy skipped = pass_energy * static_cast<double>(skip);
    const Time skipped_time = pass_time * static_cast<double>(skip);

    // Simulate from the skipped state: replay passes until death.
    Energy consumed = skipped;
    Time now = skipped_time;
    for (size_t guard = 0; guard < 1000; ++guard) {
        for (const LoadPhase &phase : profile) {
            const Energy limit = _battery.usableEnergy(phase.load);
            const Energy draw = phase.load.during(phase.duration);
            if (consumed + draw >= limit && phase.load.w() > 0.0) {
                const double fraction = (limit - consumed) / draw;
                return now +
                       phase.duration *
                           std::clamp(fraction, 0.0, 1.0);
            }
            consumed += draw;
            now += phase.duration;
        }
    }
    panic("battery did not deplete within the simulation guard");
}

} // namespace xpro
