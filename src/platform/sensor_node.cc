#include "platform/sensor_node.hh"

#include "common/logging.hh"

namespace xpro
{

Power
SensorNode::averagePower(Energy per_event,
                         double events_per_second) const
{
    xproAssert(events_per_second > 0.0,
               "event rate must be positive");
    return _config.sensingPower +
           per_event.over(Time::seconds(1.0 / events_per_second));
}

Time
SensorNode::lifetime(Energy per_event, double events_per_second) const
{
    return _config.battery.lifetime(
        averagePower(per_event, events_per_second));
}

} // namespace xpro
