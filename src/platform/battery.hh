/**
 * @file
 * Battery runtime model following the popular polymer Li-ion model
 * of Chen and Rincon-Mora (paper Section 5.1, ref. [8]): nominal
 * capacity, a usable-charge fraction, and a mild rate-dependent
 * capacity derating so heavy loads get less total charge out of the
 * cell than light loads.
 */

#ifndef XPRO_PLATFORM_BATTERY_HH
#define XPRO_PLATFORM_BATTERY_HH

#include "common/units.hh"

namespace xpro
{

/** A battery with rate-dependent usable capacity. */
class Battery
{
  public:
    /**
     * @param capacity_mah Nominal capacity.
     * @param voltage Nominal terminal voltage.
     * @param usable_fraction Charge extractable at a C/100 trickle.
     * @param rate_derating Usable-capacity loss per unit of C-rate;
     *        0.05 means a 1C load loses 5% of the trickle capacity.
     */
    Battery(double capacity_mah, double voltage,
            double usable_fraction = 0.9, double rate_derating = 0.05);

    /** The wearable sensor node's 40 mAh cell (paper Section 1). */
    static Battery sensorNodeBattery();

    /** The aggregator's iPhone-7-class cell (paper Section 5.6). */
    static Battery aggregatorBattery();

    double capacityMah() const { return _capacityMah; }
    double voltage() const { return _voltage; }

    /** Total stored energy at nominal voltage, before derating. */
    Energy nominalEnergy() const;

    /**
     * Usable energy under a constant load, after the trickle
     * fraction and rate derating.
     */
    Energy usableEnergy(Power load) const;

    /** Runtime under a constant load. */
    Time lifetime(Power load) const;

  private:
    /** Load current in multiples of the 1C current. */
    double cRate(Power load) const;

    double _capacityMah;
    double _voltage;
    double _usableFraction;
    double _rateDerating;
};

} // namespace xpro

#endif // XPRO_PLATFORM_BATTERY_HH
