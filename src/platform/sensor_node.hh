/**
 * @file
 * Wearable sensor node platform model: the 40 mAh battery, the
 * always-on uW-class sensing/ADC front-end, and the process node the
 * in-sensor analytic part is synthesized in. The paper's energy
 * model (Eq. 1) is E = Ep + Ew + Es with Es reducible "to an
 * extremely small level"; sensing is therefore modeled as a small
 * constant power.
 */

#ifndef XPRO_PLATFORM_SENSOR_NODE_HH
#define XPRO_PLATFORM_SENSOR_NODE_HH

#include "common/units.hh"
#include "hw/technology.hh"
#include "platform/battery.hh"

namespace xpro
{

/** Static configuration of a sensor node. */
struct SensorNodeConfig
{
    Battery battery = Battery::sensorNodeBattery();
    /** Constant power of the sensing/ADC front-end (Es). */
    Power sensingPower = Power::micros(2.0);
    /** Process node of the in-sensor analytic part. */
    ProcessNode process = ProcessNode::Tsmc90;
};

/** A wearable sensor node. */
class SensorNode
{
  public:
    explicit SensorNode(const SensorNodeConfig &config = {})
        : _config(config)
    {}

    const SensorNodeConfig &config() const { return _config; }

    const Technology &
    technology() const
    {
        return Technology::get(_config.process);
    }

    /** Average power given per-event analytics+radio energy. */
    Power averagePower(Energy per_event, double events_per_second) const;

    /** Battery lifetime given per-event energy and event rate. */
    Time lifetime(Energy per_event, double events_per_second) const;

  private:
    SensorNodeConfig _config;
};

} // namespace xpro

#endif // XPRO_PLATFORM_SENSOR_NODE_HH
