/**
 * @file
 * Data aggregator (smartphone) platform model.
 *
 * The paper simulates an ARM Cortex-A8 with gem5 and derives its
 * power with McPAT (Section 5.6). Neither tool is available here, so
 * the aggregator is modeled as a per-operation software cost table
 * for an A8-class in-order core at 600 MHz with ~0.5 W active power,
 * entering a low-power state between events. Fig. 13 only needs the
 * relative software energy of back-end functional cells, which this
 * preserves.
 */

#ifndef XPRO_PLATFORM_AGGREGATOR_HH
#define XPRO_PLATFORM_AGGREGATOR_HH

#include "common/units.hh"
#include "hw/cell_model.hh"
#include "platform/battery.hh"

namespace xpro
{

/** Cost of executing one cell's workload in software. */
struct SoftwareCosts
{
    Energy energy;
    Time delay;
    size_t cycles = 0;
};

/** An A8-class aggregator CPU. */
class AggregatorCpu
{
  public:
    /** Core clock (A8-class mobile SoC). */
    static constexpr double clockHz = 600.0e6;

    AggregatorCpu() = default;

    /** CPU cycles to execute one instance of @p op in software. */
    static size_t opCycles(AluOp op);

    /** Energy per active CPU cycle (core + caches). */
    static Energy energyPerCycle();

    /** Execute a functional-cell workload in software. */
    SoftwareCosts run(const CellWorkload &workload) const;
};

/** Aggregator platform: CPU plus its battery. */
class Aggregator
{
  public:
    /**
     * @param battery Aggregator battery.
     * @param idle_power Power drawn between events (low-power
     *        states; the paper lets the aggregator sleep while the
     *        sensor processes, so the default is a deep-sleep
     *        residue).
     */
    explicit Aggregator(Battery battery = Battery::aggregatorBattery(),
                        Power idle_power = Power::micros(5.0))
        : _battery(battery), _idlePower(idle_power)
    {}

    const AggregatorCpu &cpu() const { return _cpu; }
    const Battery &battery() const { return _battery; }

    /**
     * Battery lifetime if the aggregator only ran the given
     * per-event workload (the paper's Fig. 13 overhead view; the
     * CPU sleeps between events).
     */
    Time lifetime(Energy per_event, double events_per_second) const;

    Power idlePower() const { return _idlePower; }

  private:
    AggregatorCpu _cpu;
    Battery _battery;
    Power _idlePower;
};

} // namespace xpro

#endif // XPRO_PLATFORM_AGGREGATOR_HH
