#include "platform/battery.hh"

#include <algorithm>

#include "common/logging.hh"

namespace xpro
{

Battery::Battery(double capacity_mah, double voltage,
                 double usable_fraction, double rate_derating)
    : _capacityMah(capacity_mah),
      _voltage(voltage),
      _usableFraction(usable_fraction),
      _rateDerating(rate_derating)
{
    xproAssert(capacity_mah > 0.0, "capacity must be positive");
    xproAssert(voltage > 0.0, "voltage must be positive");
    xproAssert(usable_fraction > 0.0 && usable_fraction <= 1.0,
               "usable fraction %f out of (0,1]", usable_fraction);
    xproAssert(rate_derating >= 0.0, "negative rate derating");
}

Battery
Battery::sensorNodeBattery()
{
    return Battery(40.0, 3.7);
}

Battery
Battery::aggregatorBattery()
{
    // iPhone 7 class: 2900 mAh at 3.5 V (paper Section 5.6).
    return Battery(2900.0, 3.5);
}

Energy
Battery::nominalEnergy() const
{
    // mAh -> coulombs is *3.6; times volts gives joules.
    return Energy::joules(_capacityMah * 3.6 * _voltage);
}

double
Battery::cRate(Power load) const
{
    const double one_c_watts = _capacityMah * 1e-3 * _voltage;
    return load.w() / one_c_watts;
}

Energy
Battery::usableEnergy(Power load) const
{
    const double derate = std::max(
        0.1, _usableFraction - _rateDerating * cRate(load));
    return nominalEnergy() * derate;
}

Time
Battery::lifetime(Power load) const
{
    xproAssert(load.w() > 0.0, "lifetime under zero load is infinite");
    return Time::seconds(usableEnergy(load).j() / load.w());
}

} // namespace xpro
