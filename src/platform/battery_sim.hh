/**
 * @file
 * Time-stepping battery discharge simulator.
 *
 * The closed-form Battery::lifetime() assumes a constant load; real
 * wearables alternate monitoring intensities (exercise vs. sleep,
 * duty-cycled analytics). This simulator steps a state of charge
 * through an arbitrary load profile with the same rate-derating
 * behaviour as the analytic model, so variable-duty scenarios can be
 * played out and cross-checked against the constant-load closed
 * form (a tested equivalence).
 */

#ifndef XPRO_PLATFORM_BATTERY_SIM_HH
#define XPRO_PLATFORM_BATTERY_SIM_HH

#include <cstddef>
#include <vector>

#include "platform/battery.hh"

namespace xpro
{

/** One phase of a load profile. */
struct LoadPhase
{
    Power load;
    Time duration;
};

/** Outcome of a discharge simulation. */
struct DischargeResult
{
    /** True if the battery died before the profile ended. */
    bool depleted = false;
    /** Time of death (valid when depleted). */
    Time diedAt;
    /** Remaining usable energy at the end (zero when depleted). */
    Energy remaining;
    /** Fraction of usable energy consumed, in [0, 1]. */
    double depthOfDischarge = 0.0;
};

/**
 * Incremental state-of-charge tracker for online control.
 *
 * BatterySimulator answers whole-profile questions; the runtime
 * controller instead drains measured window energies as the stream
 * advances and asks for the state of charge at arbitrary (monotone)
 * sim timestamps between drains. Queries extrapolate the latest
 * span's mean power, so the answer is monotonically non-increasing
 * in time, reaches exactly zero at the interpolated depletion
 * instant and stays zero after (the depletion-to-zero edge case is
 * tested). Rate derating matches the analytic model: the usable
 * capacity is the weakest Battery::usableEnergy() over the spans
 * seen so far.
 */
class ChargeTracker
{
  public:
    explicit ChargeTracker(const Battery &battery);

    /**
     * Account @p energy drawn over (now(), at]; the span's mean
     * power feeds the rate derating and becomes the extrapolation
     * basis for later queries. @p at must advance monotonically.
     */
    void drainTo(Time at, Energy energy);

    /** Timestamp of the last drain. */
    Time now() const { return _now; }

    /**
     * State of charge in [0, 1] at @p at >= now(), extrapolating
     * the latest span's mean power past the last drain.
     */
    double stateOfCharge(Time at) const;
    /** State of charge at the last drain timestamp. */
    double stateOfCharge() const { return stateOfCharge(_now); }

    /** True once the tracked consumption hit the usable capacity. */
    bool depleted() const { return _depleted; }

    /**
     * The interpolated instant the charge reached zero. Fatal
     * unless depleted().
     */
    Time depletionTime() const;

    /** Energy drained so far (capped at the usable capacity). */
    Energy consumed() const { return _consumed; }

  private:
    Battery _battery;
    Time _now;
    Energy _consumed;
    /** Mean power of the latest drain span (extrapolation basis). */
    Power _lastPower;
    /** Weakest usable capacity over the spans seen so far. */
    Energy _limit;
    bool _depleted = false;
    Time _diedAt;
};

/** Steps a battery's state of charge through load phases. */
class BatterySimulator
{
  public:
    /**
     * @param battery Cell being discharged.
     * @param step Integration step (per-step energy bookkeeping).
     */
    explicit BatterySimulator(const Battery &battery,
                              Time step = Time::seconds(60.0));

    /**
     * Run the profile once.
     * @param profile Load phases played in order.
     * @param repeat How many times the profile repeats.
     */
    DischargeResult run(const std::vector<LoadPhase> &profile,
                        size_t repeat = 1) const;

    /**
     * Time until depletion if the profile repeats forever. Fatal if
     * a full profile pass consumes no energy.
     */
    Time lifetime(const std::vector<LoadPhase> &profile) const;

  private:
    Battery _battery;
    Time _step;
};

} // namespace xpro

#endif // XPRO_PLATFORM_BATTERY_SIM_HH
