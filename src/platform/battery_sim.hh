/**
 * @file
 * Time-stepping battery discharge simulator.
 *
 * The closed-form Battery::lifetime() assumes a constant load; real
 * wearables alternate monitoring intensities (exercise vs. sleep,
 * duty-cycled analytics). This simulator steps a state of charge
 * through an arbitrary load profile with the same rate-derating
 * behaviour as the analytic model, so variable-duty scenarios can be
 * played out and cross-checked against the constant-load closed
 * form (a tested equivalence).
 */

#ifndef XPRO_PLATFORM_BATTERY_SIM_HH
#define XPRO_PLATFORM_BATTERY_SIM_HH

#include <cstddef>
#include <vector>

#include "platform/battery.hh"

namespace xpro
{

/** One phase of a load profile. */
struct LoadPhase
{
    Power load;
    Time duration;
};

/** Outcome of a discharge simulation. */
struct DischargeResult
{
    /** True if the battery died before the profile ended. */
    bool depleted = false;
    /** Time of death (valid when depleted). */
    Time diedAt;
    /** Remaining usable energy at the end (zero when depleted). */
    Energy remaining;
    /** Fraction of usable energy consumed, in [0, 1]. */
    double depthOfDischarge = 0.0;
};

/** Steps a battery's state of charge through load phases. */
class BatterySimulator
{
  public:
    /**
     * @param battery Cell being discharged.
     * @param step Integration step (per-step energy bookkeeping).
     */
    explicit BatterySimulator(const Battery &battery,
                              Time step = Time::seconds(60.0));

    /**
     * Run the profile once.
     * @param profile Load phases played in order.
     * @param repeat How many times the profile repeats.
     */
    DischargeResult run(const std::vector<LoadPhase> &profile,
                        size_t repeat = 1) const;

    /**
     * Time until depletion if the profile repeats forever. Fatal if
     * a full profile pass consumes no energy.
     */
    Time lifetime(const std::vector<LoadPhase> &profile) const;

  private:
    Battery _battery;
    Time _step;
};

} // namespace xpro

#endif // XPRO_PLATFORM_BATTERY_SIM_HH
