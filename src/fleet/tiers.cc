#include "fleet/tiers.hh"

#include "common/logging.hh"

namespace xpro
{

TierTopology
TierTopology::build(uint64_t node_count, const TierConfig &config)
{
    xproAssert(config.sensorsPerPhone > 0 &&
                   config.phonesPerGateway > 0,
               "tier fan-outs must be positive");
    TierTopology topology;
    topology.nodes = node_count;
    topology.sensorsPerPhone = config.sensorsPerPhone;
    topology.phonesPerGateway = config.phonesPerGateway;
    topology.phones =
        (node_count + config.sensorsPerPhone - 1) /
        config.sensorsPerPhone;
    topology.gateways =
        (topology.phones + config.phonesPerGateway - 1) /
        config.phonesPerGateway;
    return topology;
}

TierBudgets
TierBudgets::build(const TierConfig &config,
                   const TierTopology &topology, uint64_t window_us)
{
    xproAssert(window_us > 0, "tier budgets need a nonzero window");
    TierBudgets budgets;
    budgets.windowUs = window_us;
    budgets.phoneCpuUsPerWindow = static_cast<uint64_t>(
        config.phone.maxCpuUtilization *
        static_cast<double>(window_us));
    budgets.gatewayAirtimeUsPerWindow = static_cast<uint64_t>(
        config.gatewayAirtimeShare *
        static_cast<double>(window_us));
    // The cloud quota is provisioned per gateway, never shared
    // across shards: a global counter would make admission depend
    // on which shard's window drained first.
    const uint64_t gateways =
        topology.gateways > 0 ? topology.gateways : 1;
    budgets.cloudEventsPerGatewayPerWindow =
        (config.cloudEventsPerSec * window_us) /
        (gateways * uint64_t(1000000));
    if (budgets.cloudEventsPerGatewayPerWindow == 0)
        budgets.cloudEventsPerGatewayPerWindow = 1;
    budgets.maxDefers = config.maxDefers;
    return budgets;
}

} // namespace xpro
