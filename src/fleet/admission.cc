#include "fleet/admission.hh"

#include "common/logging.hh"
#include "core/energy_model.hh"

namespace xpro
{

const std::string &
admissionOutcomeName(AdmissionOutcome outcome)
{
    static const std::string names[] = {"offload", "repartition",
                                        "in-sensor"};
    switch (outcome) {
      case AdmissionOutcome::Offloaded:
        return names[0];
      case AdmissionOutcome::Repartitioned:
        return names[1];
      case AdmissionOutcome::InSensor:
        return names[2];
    }
    panic("unknown admission outcome %d", static_cast<int>(outcome));
}

double
aggregatorCpuShare(const EngineTopology &topology,
                   const Placement &placement,
                   double events_per_second)
{
    xproAssert(events_per_second > 0.0,
               "event rate must be positive");
    Time software;
    for (size_t u = 1; u < topology.graph.nodeCount(); ++u) {
        if (!placement.inSensor(u))
            software += topology.graph.node(u).costs.aggregatorDelay;
    }
    return software.sec() * events_per_second;
}

Power
aggregatorAnalyticsPower(const EngineTopology &topology,
                         const Placement &placement,
                         const WirelessLink &link,
                         double events_per_second)
{
    xproAssert(events_per_second > 0.0,
               "event rate must be positive");
    const Energy per_event =
        aggregatorEventEnergy(topology, placement, link).total();
    return per_event.over(Time::seconds(1.0 / events_per_second));
}

namespace
{

/** A placement's demand on the shared aggregator. */
struct Demand
{
    double cpuShare = 0.0;
    Power power;
};

Demand
demandOf(const AdmissionCandidate &candidate,
         const Placement &placement, const WirelessLink &link)
{
    Demand demand;
    demand.cpuShare = aggregatorCpuShare(
        *candidate.topology, placement, candidate.eventsPerSecond);
    demand.power = aggregatorAnalyticsPower(
        *candidate.topology, placement, link,
        candidate.eventsPerSecond);
    return demand;
}

bool
fits(const Demand &demand, double used_cpu, Power used_power,
     const AdmissionConfig &config)
{
    return used_cpu + demand.cpuShare <=
               config.maxCpuUtilization + 1e-12 &&
           used_power + demand.power <=
               config.powerBudget + Power::micros(1e-6);
}

} // namespace

AdmissionResult
admitFleet(const std::vector<AdmissionCandidate> &candidates,
           const WirelessLink &link, const AdmissionConfig &config)
{
    xproAssert(config.maxCpuUtilization > 0.0,
               "CPU utilization cap must be positive");
    xproAssert(config.powerBudget > Power(),
               "power budget must be positive");

    AdmissionResult result;
    result.nodes.reserve(candidates.size());

    for (const AdmissionCandidate &candidate : candidates) {
        xproAssert(candidate.topology && candidate.placement,
                   "admission candidate is incomplete");

        NodeAdmission admission;
        admission.placement = *candidate.placement;
        Demand demand =
            demandOf(candidate, admission.placement, link);

        if (!fits(demand, result.cpuUtilization, result.power,
                  config)) {
            // The standalone cut does not fit: re-partition with a
            // growing aggregator-energy penalty, pulling cells back
            // into the sensor. One generator serves every round:
            // only the penalty edges' capacities change between
            // rounds, so each re-cut warm-starts from the previous
            // round's flow.
            admission.outcome = AdmissionOutcome::InSensor;
            XProGenerator generator(*candidate.topology, link);
            double weight = config.initialPenalty;
            for (size_t round = 0; round < config.maxRounds;
                 ++round, weight *= config.penaltyGrowth) {
                generator.setAggregatorEnergyWeight(weight);
                Placement penalized =
                    generator.generate().placement;
                const Demand penalized_demand =
                    demandOf(candidate, penalized, link);
                if (fits(penalized_demand, result.cpuUtilization,
                         result.power, config)) {
                    admission.outcome =
                        AdmissionOutcome::Repartitioned;
                    admission.placement = std::move(penalized);
                    admission.penaltyWeight = weight;
                    demand = penalized_demand;
                    break;
                }
            }
            if (admission.outcome == AdmissionOutcome::InSensor) {
                admission.placement =
                    Placement::allInSensor(*candidate.topology);
                admission.penaltyWeight = weight;
                demand =
                    demandOf(candidate, admission.placement, link);
                if (!fits(demand, result.cpuUtilization,
                          result.power, config)) {
                    // Even result reception busts the budget: the
                    // configuration is too small for this fleet.
                    warn("admission: in-sensor fallback still "
                         "exceeds the aggregator budget "
                         "(%.3f + %.3f CPU, %.1f + %.1f uW)",
                         result.cpuUtilization, demand.cpuShare,
                         result.power.uw(), demand.power.uw());
                }
            }
        }

        admission.cpuShare = demand.cpuShare;
        admission.power = demand.power;
        result.cpuUtilization += demand.cpuShare;
        result.power += demand.power;
        result.nodes.push_back(std::move(admission));
    }
    return result;
}

} // namespace xpro
