#include "fleet/fleet.hh"

#include <algorithm>
#include <cstring>
#include <memory>

#include "common/arena.hh"
#include "common/logging.hh"
#include "core/transfers.hh"
#include "platform/battery.hh"
#include "serve/batch_server.hh"
#include "serve/hot_path.hh"
#include "sim/event_queue.hh"
#include "sim/fault_sim.hh"

namespace xpro
{

std::vector<FleetNodeSpec>
heterogeneousFleet(size_t count, uint64_t seed)
{
    // Cycle the six paper test cases and the three process nodes at
    // co-prime strides so neighbouring nodes differ in both; every
    // node gets its own seed (its own synthetic body).
    static constexpr std::array<ProcessNode, 3> processes = {
        ProcessNode::Tsmc90,
        ProcessNode::Tsmc45,
        ProcessNode::Tsmc130,
    };
    std::vector<FleetNodeSpec> specs;
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        FleetNodeSpec spec;
        spec.testCase = allTestCases[i % allTestCases.size()];
        spec.process = processes[i % processes.size()];
        spec.seed = seed + i;
        specs.push_back(spec);
    }
    return specs;
}

std::vector<XProDesign>
designFleet(const std::vector<FleetNodeSpec> &specs,
            WirelessModel wireless, double bit_error_rate,
            WorkerPool &pool, size_t sweep_workers)
{
    ChannelModel channel;
    channel.bitErrorRate = bit_error_rate;
    return pool.map<XProDesign>(specs.size(), [&](size_t i) {
        const FleetNodeSpec &spec = specs[i];
        const SignalDataset dataset =
            makeTestCase(spec.testCase, spec.seed);

        EngineConfig config;
        config.process = spec.process;
        config.wireless = wireless;
        config.subspace.candidates = spec.subspaceCandidates;

        TrainingOptions options;
        options.maxTrainingSegments = spec.maxTrainingSegments;
        options.seed = spec.seed;

        XProDesign design;
        design.config = config;
        design.pipeline = trainPipeline(dataset, config, options);
        design.topology = buildEngineTopology(
            design.pipeline.ensemble, dataset.segmentLength, config,
            dataset.eventsPerSecond());
        const WirelessLink link(transceiver(wireless), channel);
        GeneratorOptions generator_options;
        generator_options.sweepWorkers = sweep_workers;
        design.partition =
            XProGenerator(design.topology, link, generator_options)
                .generate();
        return design;
    });
}

namespace
{

/**
 * The shared half-duplex channel: queues transfer requests from all
 * members and serves them one at a time under the arbiter's policy.
 */
class SharedRadio
{
  public:
    SharedRadio(EventQueue &queue, const RadioArbiter &arbiter,
                FleetSimResult &result)
        : _queue(queue), _arbiter(arbiter), _result(result)
    {
        // Warmup growth only: once every member has queued at least
        // once, the steady-state loop reuses this capacity.
        _pending.reserve(16);
        _requests.reserve(16);
    }

    /** Queue a transfer for @p node; @p on_delivered fires when the
     *  payload lands on the other end. */
    void
    request(size_t node, const TransferCost &cost,
            EventQueue::Handler on_delivered)
    {
        occupy(node, cost.airTime, std::move(on_delivered));
    }

    /** Queue one channel occupation (a single ARQ attempt, or one
     *  expectation-folded transfer) of length @p air for @p node. */
    void
    occupy(size_t node, Time air, EventQueue::Handler on_done)
    {
        Pending pending;
        pending.request = {node, _nextSequence++, _queue.now(), air};
        pending.onDelivered = std::move(on_done);
        _pending.push_back(std::move(pending));
        arbitrate();
    }

  private:
    struct Pending
    {
        RadioRequest request;
        EventQueue::Handler onDelivered;
    };

    void
    arbitrate()
    {
        if (_busy || _pending.empty())
            return;

        // Member scratch, not a local: the capacity survives across
        // arbitrations so the steady-state loop never allocates.
        _requests.clear();
        for (const Pending &pending : _pending)
            _requests.push_back(pending.request);

        Time start;
        const size_t chosen =
            _arbiter.grant(_requests, _queue.now(), &start);
        xproAssert(chosen < _pending.size(),
                   "arbiter chose request %zu of %zu", chosen,
                   _pending.size());
        xproAssert(start >= _queue.now(),
                   "arbiter granted a start in the past");

        if (start > _queue.now()) {
            // The winner may not start yet (e.g. its TDMA slot is
            // ahead). Re-arbitrate at that time; a request arriving
            // in between triggers its own arbitration, so an armed
            // wakeup is only kept if it is still the earliest.
            if (!_wakeupArmed || start < _wakeupAt) {
                _wakeupArmed = true;
                _wakeupAt = start;
                _queue.schedule(start, [this, start]() {
                    if (_wakeupArmed && _wakeupAt == start)
                        _wakeupArmed = false;
                    arbitrate();
                });
            }
            return;
        }

        _busy = true;
        _current = std::move(_pending[chosen]);
        _pending.erase(_pending.begin() +
                       static_cast<ptrdiff_t>(chosen));
        _result.radioBusy += _current.request.airTime;
        ++_result.transfers;
        // The in-flight job lives in _current (there is at most one:
        // _busy gates arbitration) so the completion capture is just
        // `this` — small enough for std::function's inline storage,
        // keeping the steady-state loop allocation-free. Move the
        // job to a local first: the handler may queue new transfers.
        _queue.scheduleAfter(_current.request.airTime, [this]() {
            Pending job = std::move(_current);
            job.onDelivered();
            _busy = false;
            arbitrate();
        });
    }

    EventQueue &_queue;
    const RadioArbiter &_arbiter;
    FleetSimResult &_result;
    bool _busy = false;
    bool _wakeupArmed = false;
    Time _wakeupAt;
    std::vector<Pending> _pending;
    std::vector<RadioRequest> _requests; // arbitrate() scratch
    Pending _current;                    // the one in-flight job
    uint64_t _nextSequence = 0;
};

/**
 * The aggregator's single CPU: software cells of all members
 * execute one at a time, first come first served.
 */
class CpuServer
{
  public:
    CpuServer(EventQueue &queue, FleetSimResult &result)
        : _queue(queue), _result(result)
    {
        _backlog.reserve(16);
    }

    /** Run a software job of length @p exec; @p done fires at its
     *  completion. */
    void
    submit(Time exec, EventQueue::Handler done)
    {
        _backlog.push_back({exec, std::move(done)});
        if (!_busy)
            startNext();
    }

  private:
    struct Job
    {
        Time exec;
        EventQueue::Handler done;
    };

    void
    startNext()
    {
        if (_backlog.empty()) {
            _busy = false;
            return;
        }
        _busy = true;
        _current = std::move(_backlog.front());
        _backlog.erase(_backlog.begin());
        _result.aggregatorBusy += _current.exec;
        // As in SharedRadio: the running job lives in _current so the
        // completion capture stays within std::function's inline
        // storage (no heap). Move out before invoking — the handler
        // may submit new jobs.
        _queue.scheduleAfter(_current.exec, [this]() {
            Job job = std::move(_current);
            job.done();
            startNext();
        });
    }

    EventQueue &_queue;
    FleetSimResult &_result;
    bool _busy = false;
    std::vector<Job> _backlog;
    Job _current; // the one running job
};

/**
 * Event-level simulation of a whole fleet. Per-member dataflow
 * state mirrors the single-node SystemSimulator; the difference is
 * the shared radio (arbitrated, not FIFO-per-node) and the shared
 * aggregator CPU (a single server for every member's software
 * cells). Sensor-side cells of different members run concurrently:
 * every node owns its silicon.
 *
 * With a fault profile, all members share one Gilbert-Elliott loss
 * chain (it is one physical channel) but each runs its own outage
 * detector, local fallback and recovery probes: one body walking
 * out of range degrades only its own node.
 */
class FleetSimulator
{
  public:
    FleetSimulator(const std::vector<FleetMember> &members,
                   const WirelessLink &link,
                   const RadioArbiter &arbiter,
                   size_t events_per_node,
                   const FaultProfile *faults = nullptr,
                   const std::vector<NodeOutage> *node_outages =
                       nullptr)
        : _link(link),
          _eventsPerNode(events_per_node),
          _radio(_queue, arbiter, _result),
          _cpu(_queue, _result)
    {
        xproAssert(!members.empty(),
                   "fleet simulation needs at least one member");
        xproAssert(events_per_node > 0, "need at least one event");

        if (faults && faults->enabled)
            _faults.emplace(*faults);
        if (node_outages)
            _nodeOutages = *node_outages;
        xproAssert(_nodeOutages.empty() || _faults.has_value(),
                   "node outages need the fault machinery enabled");
        for (const NodeOutage &outage : _nodeOutages) {
            xproAssert(outage.node < members.size(),
                       "outage for node %zu of a %zu-node fleet",
                       outage.node, members.size());
        }

        _members.reserve(members.size());
        for (const FleetMember &member : members) {
            xproAssert(member.eventsPerSecond > 0.0,
                       "event rate must be positive");
            Member state;
            state.spec = &member;
            state.groups = broadcastGroups(member.topology);
            // Same-end / other-end consumer splits are static under
            // a fixed placement: computing them once (in consumer
            // order) keeps finishNode free of per-event vectors.
            state.splits.reserve(state.groups.size());
            for (const BroadcastGroup &group : state.groups) {
                GroupSplit split;
                for (size_t v : group.consumers) {
                    if (member.placement.inSensor(v) ==
                        member.placement.inSensor(group.producer))
                        split.sameEnd.push_back(v);
                    else
                        split.otherEnd.push_back(v);
                }
                state.splits.push_back(std::move(split));
            }
            state.instances.resize(events_per_node);
            const DataflowGraph &graph = member.topology.graph;
            // Flat per-(event, node) dataflow state, as in the
            // single-node simulator: the setup's allocation count
            // stays independent of events_per_node (checked by the
            // counting-allocator tests). sensorFinishAt is per
            // instance but fault-path-only, which is exempt from the
            // zero-allocation claim.
            const size_t nodes = graph.nodeCount();
            state.graphNodes = nodes;
            // Struct-of-arrays: the per-(event, node) counters of
            // all members share one arena, so a member's dataflow
            // state costs two pointers instead of two heap vectors
            // and the slab count stays independent of both fleet
            // size and events_per_node (until the arena block size
            // is exceeded, at which point the arena grows in fixed
            // blocks — still a constant number of heap allocations
            // for a fixed workload shape).
            const size_t cells = events_per_node * nodes;
            state.inputsPending = _stateArena.alloc<size_t>(cells);
            state.done = _stateArena.alloc<uint8_t>(cells);
            std::memset(state.inputsPending, 0,
                        cells * sizeof(size_t));
            std::memset(state.done, 0, cells);
            for (size_t k = 0; k < events_per_node; ++k) {
                for (size_t v = 1; v < nodes; ++v) {
                    state.inputsPending[k * nodes + v] =
                        graph.predecessors(v).size();
                }
            }
            if (_faults) {
                for (Instance &instance : state.instances) {
                    instance.sensorFinishAt.assign(nodes,
                                                   std::nullopt);
                }
            }
            _maxGraphNodes =
                std::max(_maxGraphNodes, graph.nodeCount());
            _maxGroups =
                std::max(_maxGroups, state.groups.size());
            _members.push_back(std::move(state));
        }
        // Strides for packing (member, event, node/group) into one
        // word so completion captures fit std::function's inline
        // storage (the steady-state loop must not allocate).
        _maxGraphNodes = std::max<size_t>(_maxGraphNodes, 1);
        _maxGroups = std::max<size_t>(_maxGroups, 1);
        _queue.reserve(members.size() * events_per_node + 64);
    }

    FleetSimResult
    run()
    {
        for (size_t m = 0; m < _members.size(); ++m) {
            const Time period = Time::seconds(
                1.0 / _members[m].spec->eventsPerSecond);
            for (size_t k = 0; k < _eventsPerNode; ++k) {
                _queue.schedule(
                    period * static_cast<double>(k),
                    [this, packed = m * _eventsPerNode + k]() {
                        completeNode(packed / _eventsPerNode,
                                     packed % _eventsPerNode,
                                     DataflowGraph::sourceId);
                    });
            }
        }
        _queue.runAll(4000000);

        if (_faults) {
            RobustnessReport &stats = _faults->stats();
            for (const Member &member : _members) {
                stats.bufferedResults += member.buffered.size();
                if (member.degradedMode) {
                    stats.outageTimeMs +=
                        (_queue.now() - member.outageStart).ms();
                }
            }
            if (stats.replayedResults > 0) {
                stats.meanRecoveryMs =
                    _recoverySum.ms() /
                    static_cast<double>(stats.replayedResults);
            }
            _result.robustness = stats;
        }

        _result.members.resize(_members.size());
        for (size_t m = 0; m < _members.size(); ++m) {
            const Member &member = _members[m];
            const Time period = Time::seconds(
                1.0 / member.spec->eventsPerSecond);
            MemberSimResult &out = _result.members[m];
            out.events = _eventsPerNode;
            out.degradedEvents = member.degradedEvents;
            Time latency_sum;
            for (size_t k = 0; k < _eventsPerNode; ++k) {
                const Instance &instance = member.instances[k];
                xproAssert(instance.resultAt.has_value(),
                           "member %zu event %zu never completed",
                           m, k);
                const Time completion = *instance.resultAt;
                const Time latency =
                    completion - period * static_cast<double>(k);
                latency_sum += latency;
                out.worstLatency =
                    std::max(out.worstLatency, latency);
                if (latency > period)
                    ++out.deadlineMisses;
                if (k == 0)
                    out.firstCompletion = completion;
                _result.span = std::max(_result.span, completion);
            }
            out.meanLatency = Time::seconds(
                latency_sum.sec() /
                static_cast<double>(_eventsPerNode));
        }
        return std::move(_result);
    }

  private:
    struct Instance
    {
        std::optional<Time> resultAt;
        /** Fault path: completion time of every node that started on
         *  the sensor end (source included), for the fallback DP. */
        std::vector<std::optional<Time>> sensorFinishAt;
        /** Fault path: classified via the local fallback. */
        bool degraded = false;
        /** Fault path: when the local classification was produced. */
        std::optional<Time> localResultAt;
    };

    /** A broadcast group's consumers split by end relative to the
     *  producer; static under a fixed placement. */
    struct GroupSplit
    {
        std::vector<size_t> sameEnd;
        std::vector<size_t> otherEnd;
    };

    struct Member
    {
        const FleetMember *spec = nullptr;
        std::vector<BroadcastGroup> groups;
        /** splits[g] belongs to groups[g]. */
        std::vector<GroupSplit> splits;
        std::vector<Instance> instances;
        /** Flat per-(event, node) dataflow state, indexed
         * k * graphNodes + v; arena-backed slabs shared by every
         * member (owned by FleetSimulator::_stateArena). */
        size_t graphNodes = 0;
        size_t *inputsPending = nullptr;
        uint8_t *done = nullptr;
        // Per-node outage detector state (fault path only).
        size_t abandonStreak = 0;
        bool degradedMode = false;
        Time outageStart;
        std::vector<size_t> buffered;
        size_t degradedEvents = 0;
        size_t probeCount = 0;
    };

    void
    deliverTo(size_t m, size_t k, size_t v)
    {
        Member &member = _members[m];
        size_t &pending =
            member.inputsPending[k * member.graphNodes + v];
        xproAssert(pending > 0, "duplicate delivery to node %zu",
                   v);
        if (--pending == 0)
            completeNode(m, k, v);
    }

    void
    completeNode(size_t m, size_t k, size_t u)
    {
        Member &member = _members[m];
        // (m, k, u) packed into one word: the capture then fits
        // std::function's inline buffer, so scheduling a completion
        // never touches the heap in the steady-state loop.
        const auto finish =
            [this, packed = (m * _eventsPerNode + k) *
                                _maxGraphNodes +
                            u]() {
                const size_t rest = packed / _maxGraphNodes;
                finishNode(rest / _eventsPerNode,
                           rest % _eventsPerNode,
                           packed % _maxGraphNodes);
            };
        if (u == DataflowGraph::sourceId) {
            if (_faults) {
                Instance &instance = member.instances[k];
                instance.sensorFinishAt[u] = _queue.now();
                // Injected mid-outage: straight to local fallback.
                if (member.degradedMode)
                    degradeEvent(m, k);
            }
            _queue.scheduleAfter(Time(), finish);
            return;
        }
        const CellCosts &costs =
            member.spec->topology.graph.node(u).costs;
        if (member.spec->placement.inSensor(u)) {
            // The member's own hardware: runs concurrently with
            // every other node's cells.
            if (_faults) {
                member.instances[k].sensorFinishAt[u] =
                    _queue.now() + costs.sensorDelay;
            }
            _queue.scheduleAfter(costs.sensorDelay, finish);
        } else {
            // Software on the one shared aggregator core.
            _cpu.submit(costs.aggregatorDelay, finish);
        }
    }

    void
    finishNode(size_t m, size_t k, size_t u)
    {
        Member &member = _members[m];
        const EngineTopology &topology = member.spec->topology;
        const Placement &placement = member.spec->placement;
        member.done[k * member.graphNodes + u] = 1;

        // Degraded instances stop propagating: everything not yet
        // started is being recomputed by the local fallback.
        if (member.instances[k].degraded)
            return;

        if (u == topology.fusionNode) {
            if (placement.inSensor(u)) {
                if (_faults) {
                    sendResult(m, k);
                } else {
                    const TransferCost cost =
                        _link.transfer(EngineTopology::resultBits);
                    _radio.request(
                        m, cost,
                        [this,
                         packed = m * _eventsPerNode + k]() {
                            _members[packed / _eventsPerNode]
                                .instances[packed % _eventsPerNode]
                                .resultAt = _queue.now();
                        });
                }
            } else {
                member.instances[k].resultAt = _queue.now();
            }
        }

        for (size_t g = 0; g < member.groups.size(); ++g) {
            const BroadcastGroup &group = member.groups[g];
            if (group.producer != u)
                continue;
            const GroupSplit &split = member.splits[g];
            for (size_t v : split.sameEnd)
                deliverTo(m, k, v);
            if (!split.otherEnd.empty()) {
                if (_faults) {
                    sendPayload(m, k, u, group.bits,
                                split.otherEnd);
                } else {
                    // The consumer list on the far end is static
                    // (_members[m].splits[g]), so capturing the
                    // packed (m, k, g) index is enough — no
                    // per-event vector copy, no heap.
                    const TransferCost cost =
                        _link.transfer(group.bits);
                    _radio.request(
                        m, cost,
                        [this,
                         packed = (m * _eventsPerNode + k) *
                                      _maxGroups +
                                  g]() {
                            const size_t rest = packed / _maxGroups;
                            const size_t dm = rest / _eventsPerNode;
                            const size_t dk = rest % _eventsPerNode;
                            for (size_t v :
                                 _members[dm]
                                     .splits[packed % _maxGroups]
                                     .otherEnd)
                                deliverTo(dm, dk, v);
                        });
                }
            }
        }
    }

    // ---- Fault-injected path -------------------------------------

    /** True while member @p m is inside a scripted dropout. */
    bool
    nodeInOutage(size_t m, Time at) const
    {
        for (const NodeOutage &outage : _nodeOutages) {
            if (outage.node == m && at >= outage.start &&
                at < outage.end)
                return true;
        }
        return false;
    }

    ArqPacket
    makePacket(size_t m, size_t payload_bits, bool sender_in_sensor,
               std::string what, bool is_probe = false)
    {
        ArqPacket packet;
        packet.payloadBits = payload_bits;
        packet.senderInSensor = sender_in_sensor;
        packet.what = std::move(what);
        packet.isProbe = is_probe;
        packet.forceLost = [this, m](Time at) {
            return nodeInOutage(m, at);
        };
        return packet;
    }

    ChannelGrant
    grantFn(size_t m)
    {
        return [this, m](Time air, const std::string &,
                         EventQueue::Handler on_done) {
            _radio.occupy(m, air, std::move(on_done));
        };
    }

    void
    sendPayload(size_t m, size_t k, size_t u, size_t bits,
                std::vector<size_t> other_end)
    {
        const Member &member = _members[m];
        ArqPacket packet = makePacket(
            m, bits, member.spec->placement.inSensor(u),
            member.spec->topology.graph.node(u).name + " payload #" +
                std::to_string(k));
        runArq(_queue, *_faults, _link, std::move(packet), nullptr,
               grantFn(m), nullptr,
               [this, m, k, other_end = std::move(other_end)](
                   bool delivered, size_t) {
                   onPacketOutcome(m, delivered);
                   Instance &instance = _members[m].instances[k];
                   if (delivered) {
                       if (!instance.degraded) {
                           for (size_t v : other_end)
                               deliverTo(m, k, v);
                       }
                   } else {
                       degradeEvent(m, k);
                   }
               });
    }

    void
    sendResult(size_t m, size_t k)
    {
        ArqPacket packet =
            makePacket(m, EngineTopology::resultBits, true,
                       "result #" + std::to_string(k));
        runArq(_queue, *_faults, _link, std::move(packet), nullptr,
               grantFn(m), nullptr,
               [this, m, k](bool delivered, size_t) {
                   onPacketOutcome(m, delivered);
                   Instance &instance = _members[m].instances[k];
                   if (instance.degraded)
                       return;
                   if (delivered)
                       instance.resultAt = _queue.now();
                   else
                       degradeEvent(m, k);
               });
    }

    void
    replayResult(size_t m, size_t k)
    {
        ArqPacket packet =
            makePacket(m, EngineTopology::resultBits, true,
                       "replay result #" + std::to_string(k));
        runArq(_queue, *_faults, _link, std::move(packet), nullptr,
               grantFn(m), nullptr,
               [this, m, k](bool delivered, size_t) {
                   onPacketOutcome(m, delivered);
                   if (delivered) {
                       ++_faults->stats().replayedResults;
                       _recoverySum +=
                           _queue.now() -
                           *_members[m].instances[k].localResultAt;
                   } else {
                       _members[m].buffered.push_back(k);
                   }
               });
    }

    void
    onPacketOutcome(size_t m, bool delivered)
    {
        Member &member = _members[m];
        RobustnessReport &stats = _faults->stats();
        if (delivered) {
            member.abandonStreak = 0;
            if (member.degradedMode) {
                member.degradedMode = false;
                stats.outageTimeMs +=
                    (_queue.now() - member.outageStart).ms();
                std::vector<size_t> pending;
                pending.swap(member.buffered);
                for (size_t k : pending)
                    replayResult(m, k);
            }
            return;
        }
        ++member.abandonStreak;
        if (!member.degradedMode &&
            member.abandonStreak >=
                _faults->profile().outageThreshold) {
            member.degradedMode = true;
            member.outageStart = _queue.now();
            ++stats.outages;
            scheduleProbe(m);
        }
    }

    void
    scheduleProbe(size_t m)
    {
        const Member &member = _members[m];
        // Probing stops one period past the member's last injection
        // so the queue always drains under a permanent outage.
        const Time horizon =
            Time::seconds(1.0 / member.spec->eventsPerSecond) *
            static_cast<double>(_eventsPerNode);
        const Time next =
            _queue.now() + _faults->profile().probeInterval;
        if (next > horizon)
            return;
        _queue.schedule(next, [this, m]() {
            if (!_members[m].degradedMode)
                return;
            sendProbe(m);
        });
    }

    void
    sendProbe(size_t m)
    {
        Member &member = _members[m];
        ArqPacket packet = makePacket(
            m, EngineTopology::resultBits, true,
            "probe #" + std::to_string(member.probeCount++), true);
        runArq(_queue, *_faults, _link, std::move(packet), nullptr,
               grantFn(m), nullptr,
               [this, m](bool delivered, size_t) {
                   if (!_members[m].degradedMode)
                       return;
                   if (delivered)
                       onPacketOutcome(m, true);
                   else
                       scheduleProbe(m);
               });
    }

    /** Finish member @p m's event @p k locally from now on. */
    void
    degradeEvent(size_t m, size_t k)
    {
        Member &member = _members[m];
        Instance &instance = member.instances[k];
        if (instance.degraded)
            return;
        instance.degraded = true;
        ++member.degradedEvents;
        ++_faults->stats().degradedEvents;
        const LocalFallback plan = computeLocalFallback(
            member.spec->topology, member.spec->placement,
            instance.sensorFinishAt, _queue.now());
        _queue.schedule(plan.completion, [this, m, k]() {
            Member &member = _members[m];
            Instance &instance = member.instances[k];
            instance.resultAt = _queue.now();
            instance.localResultAt = _queue.now();
            if (member.degradedMode)
                member.buffered.push_back(k);
            else
                replayResult(m, k);
        });
    }

    const WirelessLink &_link;
    size_t _eventsPerNode;
    /** Packing strides for single-word completion captures. */
    size_t _maxGraphNodes = 0;
    size_t _maxGroups = 0;
    EventQueue _queue;
    FleetSimResult _result;
    SharedRadio _radio;
    CpuServer _cpu;
    /** Backs every member's inputsPending/done slabs; declared
     *  before _members so the pointers outlive their users. */
    Arena _stateArena;
    std::vector<Member> _members;

    // Fault-injection state (unused on the legacy path).
    std::optional<FaultState> _faults;
    std::vector<NodeOutage> _nodeOutages;
    Time _recoverySum;
};

/** Longest single payload any member can put on the air. */
Time
largestAirTime(const std::vector<FleetMember> &members,
               const WirelessLink &link)
{
    Time largest = link.transfer(EngineTopology::resultBits).airTime;
    for (const FleetMember &member : members) {
        for (const BroadcastGroup &group :
             broadcastGroups(member.topology)) {
            largest = std::max(largest,
                               link.transfer(group.bits).airTime);
        }
    }
    return largest;
}

} // namespace

FleetSimResult
simulateFleet(const std::vector<FleetMember> &members,
              const WirelessLink &link, const RadioArbiter &arbiter,
              size_t events_per_node)
{
    FleetSimulator simulator(members, link, arbiter,
                             events_per_node);
    return simulator.run();
}

FleetSimResult
simulateFleet(const std::vector<FleetMember> &members,
              const WirelessLink &link, const RadioArbiter &arbiter,
              size_t events_per_node, const FaultProfile &faults,
              const std::vector<NodeOutage> &node_outages)
{
    if (!faults.enabled && node_outages.empty())
        return simulateFleet(members, link, arbiter,
                             events_per_node);
    // Scripted dropouts alone ride on the ARQ/fallback machinery
    // with an otherwise loss-free channel.
    FaultProfile profile = faults;
    profile.enabled = true;
    profile.validate();
    FleetSimulator simulator(members, link, arbiter, events_per_node,
                             &profile, &node_outages);
    return simulator.run();
}

FleetResult
runFleet(const FleetConfig &config)
{
    xproAssert(!config.nodes.empty(),
               "fleet needs at least one node");
    xproAssert(config.eventRateScale > 0.0,
               "event rate scale must be positive");

    ChannelModel channel;
    channel.bitErrorRate = config.bitErrorRate;
    const WirelessLink link(transceiver(config.wireless), channel);

    FleetResult result;

    // Phase 1: per-node design, concurrently.
    WorkerPool pool(config.workers);
    std::vector<XProDesign> designs =
        designFleet(config.nodes, config.wireless,
                    config.bitErrorRate, pool, config.sweepWorkers);
    result.designWork = pool.lastWork();
    result.designMakespan = pool.lastMakespan();
    result.designWall = pool.lastWall();

    const auto eventRate = [&](size_t i) {
        const TestCaseInfo &info =
            testCaseInfo(config.nodes[i].testCase);
        return info.sampleRateHz /
               static_cast<double>(info.segmentLength);
    };

    // Phase 2: admission against the shared aggregator.
    std::vector<AdmissionCandidate> candidates;
    candidates.reserve(designs.size());
    for (size_t i = 0; i < designs.size(); ++i) {
        candidates.push_back({&designs[i].topology,
                              &designs[i].partition.placement,
                              eventRate(i)});
    }
    result.admission =
        admitFleet(candidates, link, config.admission);

    // Phase 3: event-level simulation on the shared channel.
    std::vector<FleetMember> members;
    members.reserve(designs.size());
    for (size_t i = 0; i < designs.size(); ++i) {
        members.push_back({designs[i].topology,
                           result.admission.nodes[i].placement,
                           eventRate(i) * config.eventRateScale});
    }

    const FcfsArbiter fcfs;
    std::unique_ptr<TdmaArbiter> tdma;
    const RadioArbiter *arbiter = &fcfs;
    if (config.policy == RadioPolicy::Tdma) {
        const Time slot = config.tdmaSlot > Time()
                              ? config.tdmaSlot
                              : largestAirTime(members, link);
        tdma = std::make_unique<TdmaArbiter>(members.size(), slot);
        arbiter = tdma.get();
    }
    if (config.faults.enabled || !config.nodeOutages.empty()) {
        result.sim =
            simulateFleet(members, link, *arbiter,
                          config.eventsPerNode, config.faults,
                          config.nodeOutages);
    } else {
        result.sim = simulateFleet(members, link, *arbiter,
                                   config.eventsPerNode);
    }

    // Per-node analytic evaluation of the admitted placements.
    const Aggregator aggregator;
    result.nodes.reserve(designs.size());
    for (size_t i = 0; i < designs.size(); ++i) {
        FleetNodeResult node;
        node.spec = config.nodes[i];
        node.design = std::move(designs[i]);
        node.admission = result.admission.nodes[i];
        SensorNodeConfig sensor_config;
        sensor_config.process = node.spec.process;
        node.evaluation = evaluateEngine(
            EngineKind::CrossEnd, node.design.topology,
            node.admission.placement, link,
            SensorNode(sensor_config), aggregator,
            WorkloadContext{eventRate(i)});
        result.nodes.push_back(std::move(node));
    }

    // Fleet report.
    FleetReport &report = result.report;
    report.robustness = result.sim.robustness;
    report.policy = arbiter->name();
    report.nodeCount = result.nodes.size();
    report.spanMs = result.sim.span.ms();
    report.radioBusyMs = result.sim.radioBusy.ms();
    report.radioOccupancy =
        result.sim.span > Time()
            ? result.sim.radioBusy / result.sim.span
            : 0.0;
    report.transfers = result.sim.transfers;
    report.aggregatorBusyMs = result.sim.aggregatorBusy.ms();
    report.aggregatorUtilization =
        result.sim.span > Time()
            ? result.sim.aggregatorBusy / result.sim.span
            : 0.0;
    report.aggregatorCpuShare = result.admission.cpuUtilization;
    report.aggregatorPowerUw = result.admission.power.uw();
    report.aggregatorLifetimeHours =
        aggregator.battery()
            .lifetime(result.admission.power +
                      aggregator.idlePower())
            .hr();

    for (size_t i = 0; i < result.nodes.size(); ++i) {
        const FleetNodeResult &node = result.nodes[i];
        const MemberSimResult &sim = result.sim.members[i];
        FleetNodeReportRow row;
        row.symbol = testCaseInfo(node.spec.testCase).symbol;
        row.process = processNodeName(node.spec.process);
        row.admission =
            admissionOutcomeName(node.admission.outcome);
        row.sensorCells =
            node.admission.placement.sensorCellCount();
        row.totalCells = node.design.topology.graph.cellCount();
        row.accuracy = node.design.pipeline.testAccuracy;
        row.eventsPerSecond = eventRate(i);
        row.sensorLifetimeHours =
            node.evaluation.sensorLifetime.hr();
        row.events = sim.events;
        row.deadlineMisses = sim.deadlineMisses;
        row.meanLatencyMs = sim.meanLatency.ms();
        row.worstLatencyMs = sim.worstLatency.ms();
        row.aggregatorPowerUw = node.admission.power.uw();
        row.degradedEvents = sim.degradedEvents;
        report.totalEvents += sim.events;
        report.totalDeadlineMisses += sim.deadlineMisses;
        report.rows.push_back(std::move(row));
    }

    // Phase 4: steady-state serving. Segments come round-robin
    // across the nodes' regenerated datasets (makeTestCase is a pure
    // function of (case, seed), so the stream is deterministic) and
    // are classified through the allocation-free SIMD hot path, one
    // cross-user batch at a time. Every event is classified by its
    // own user's pipeline independently, so the predictions — and
    // hence the report bytes — are identical at any batch size and
    // worker count.
    if (config.servingEvents > 0) {
        std::vector<SignalDataset> datasets;
        std::vector<HotPathPipeline> pipelines;
        datasets.reserve(result.nodes.size());
        pipelines.reserve(result.nodes.size());
        for (const FleetNodeResult &node : result.nodes) {
            datasets.push_back(
                makeTestCase(node.spec.testCase, node.spec.seed));
            pipelines.emplace_back(node.design.pipeline);
        }
        std::vector<const HotPathPipeline *> users;
        users.reserve(pipelines.size());
        for (const HotPathPipeline &pipeline : pipelines)
            users.push_back(&pipeline);

        std::vector<ServingEvent> events;
        events.reserve(config.servingEvents);
        for (size_t e = 0; e < config.servingEvents; ++e) {
            const size_t user = e % users.size();
            const SignalDataset &data = datasets[user];
            const Segment &segment =
                data.segments[(e / users.size()) %
                              data.segments.size()];
            events.push_back({static_cast<uint32_t>(user),
                              segment.samples.data(),
                              segment.samples.size()});
        }

        BatchServer server(std::move(users), config.batchEvents,
                           config.servingWorkers);
        const std::vector<int> labels = server.serve(events);

        ServingReport &serving = report.serving;
        serving.enabled = true;
        serving.events = labels.size();
        serving.users = result.nodes.size();
        serving.nodeEvents.assign(result.nodes.size(), 0);
        serving.nodePositives.assign(result.nodes.size(), 0);
        for (size_t e = 0; e < labels.size(); ++e) {
            const size_t user = events[e].user;
            ++serving.nodeEvents[user];
            if (labels[e] > 0) {
                ++serving.positives;
                ++serving.nodePositives[user];
            }
        }
    }
    return result;
}

} // namespace xpro
