/**
 * @file
 * Deterministic chaos layer for population-scale fleets (DESIGN.md
 * §18): gateway crash/restart episodes, correlated regional outages,
 * cloud-unreachable windows and node churn, all derived from a seed
 * so a chaos run is exactly reproducible.
 *
 * The schedule is quantized to the sharded event queue's
 * synchronization windows: every transition (a gateway dying, a
 * region going dark, a node leaving) happens at a window boundary,
 * where the run() barrier is single-threaded and may touch every
 * shard. Inside a window the chaos state is frozen, so shard drains
 * only ever *read* it — the same no-cross-shard-writes discipline
 * that makes the FleetReport byte-identical at any shards x workers
 * combination (§16) extends unchanged to chaos runs.
 *
 * Nothing here draws from a shared RNG stream: crash intervals are
 * splitmix64 hashes of (seed, gateway, episode), churn windows are
 * hashes of (seed, node). Two runs with the same configuration see
 * the same failures in the same order regardless of how gateways are
 * grouped into shards or how many workers drain them.
 */

#ifndef XPRO_FLEET_CHAOS_HH
#define XPRO_FLEET_CHAOS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xpro
{

/** Half-open range [begin, end) of synchronization-window indices. */
struct ChaosWindowRange
{
    uint64_t begin = 0;
    uint64_t end = 0;
};

/** Configuration of the deterministic chaos schedule plus the
 *  self-healing knobs (failover handover cost, retry backoff). */
struct ChaosConfig
{
    /** Master switch; false = the population simulator takes the
     *  exact legacy path (no chaos reads, byte-identical report). */
    bool enabled = false;
    /** Seed of the crash-interval and churn-assignment hashes.
     *  Independent of the fleet's phase-stagger seed. */
    uint64_t seed = 2017;

    /**
     * Mean windows between independent crashes of one gateway
     * (0 = gateways never crash on their own). Actual intervals are
     * hashed per (gateway, episode) into [max(1, mtbf/2),
     * mtbf/2 + mtbf), so crashes de-correlate across gateways while
     * keeping the configured mean.
     */
    uint64_t gatewayMtbfWindows = 0;
    /** Windows a crashed gateway stays down before restarting. */
    uint64_t gatewayMttrWindows = 4;

    /**
     * Correlated regional outage cadence: every this many windows,
     * one whole region (regionGateways consecutive gateways, cycled
     * round-robin) crashes for regionOutageWindows. 0 disables.
     */
    uint64_t regionPeriodWindows = 0;
    uint64_t regionOutageWindows = 4;
    uint32_t regionGateways = 8;

    /** Windows during which the cloud tier is unreachable; gateways
     *  then complete events locally (the degradation ladder's first
     *  rung) instead of consuming cloud ingest quota. */
    std::vector<ChaosWindowRange> cloudOutages;

    /** Fraction of nodes (hash-selected) that churn out once. */
    double churnFraction = 0.0;
    /** Leave windows are spread over [1, 1 + spread). */
    uint64_t churnSpreadWindows = 16;
    /** Windows a churned-out node stays away before rejoining. */
    uint64_t churnAbsenceWindows = 8;

    /** Per-item cost of re-keying a migrated node's in-flight
     *  transport events to its new gateway (priced like §14's
     *  cutover: a bounded, accounted handover penalty). */
    uint64_t handoverCostUs = 500;
    /** Tier-retry backoff: a deferred event retries after
     *  base << defers plus deterministic per-item jitter, instead of
     *  the chaos-free path's parking at the next window boundary. */
    uint64_t retryBackoffBaseUs = 2000;
    uint64_t retryJitterUs = 1000;

    /** Panics on nonsense parameters (zero repair/absence times,
     *  fractions outside [0,1], zero backoff base). */
    void validate() const;

    /**
     * Named profile: "none" (disabled), "flaky" (independent gateway
     * crashes), "regional" (correlated regional outages), "churn"
     * (node join/leave) or "harsh" (all of the above plus a cloud
     * outage). Fatal on unknown names.
     */
    static ChaosConfig profile(const std::string &name);

    /** All profile names, for usage strings. */
    static const std::vector<std::string> &profileNames();
};

/**
 * The live schedule: per-gateway up/down state advanced one window
 * boundary at a time by step(), plus pure hash queries for cloud
 * outages and churn assignments. Owned by the barrier (single
 * thread); shard drains only read the down map between steps.
 */
class ChaosSchedule
{
  public:
    ChaosSchedule(const ChaosConfig &config, uint64_t gateways);

    /** Is @p gateway down during the current window? */
    bool
    gatewayDown(uint64_t gateway) const
    {
        return _down[static_cast<size_t>(gateway)] != 0;
    }

    /** One byte per gateway, nonzero = down; frozen inside a
     *  window, so shard drains may read it without synchronization. */
    const std::vector<uint8_t> &downMap() const { return _down; }

    /** Gateways currently down. */
    size_t downGateways() const { return _downCount; }

    /** Is the cloud tier unreachable during window @p window? */
    bool cloudDown(uint64_t window) const;

    /**
     * Next live gateway after @p gateway in ring order (the
     * configured neighbor policy), or the gateway count when every
     * gateway is down (total blackout: no failover target).
     */
    uint64_t failoverTarget(uint64_t gateway) const;

    /**
     * Churn assignment of @p node: returns true (and fills the
     * leave/rejoin window indices) for the hash-selected churners.
     * Pure function of (seed, node) — every shard grouping agrees.
     */
    bool churnWindows(uint64_t node, uint64_t &leave_window,
                      uint64_t &join_window) const;

    /**
     * Advance to the boundary entering window @p window (>= 1):
     * apply restarts due at it, then the regional outage (if the
     * cadence hits), then independent crashes. @p restarted and
     * @p crashed receive the transitioning gateway ids in increasing
     * order. Must be called for every boundary in sequence.
     */
    void step(uint64_t window, std::vector<uint32_t> &restarted,
              std::vector<uint32_t> &crashed);

  private:
    /** Hashed windows-to-next-crash for (gateway, episode). */
    uint64_t interval(uint64_t gateway, uint64_t episode) const;

    ChaosConfig _config;
    uint64_t _gateways = 0;
    std::vector<uint8_t> _down;
    std::vector<uint64_t> _nextCrash; ///< window index, ~0 = never
    std::vector<uint64_t> _restartAt;
    std::vector<uint32_t> _episode;
    size_t _downCount = 0;
};

} // namespace xpro

#endif // XPRO_FLEET_CHAOS_HH
