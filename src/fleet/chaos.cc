#include "fleet/chaos.hh"

#include "common/logging.hh"

#include <algorithm>
#include <cassert>

namespace xpro
{

namespace
{

/** splitmix64 finalizer — the same stateless hash the population
 *  simulator uses for phase stagger; all chaos draws are hashes so
 *  no shard grouping ever perturbs another's sequence. */
uint64_t
chaosMix(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Domain-separation salts so gateway-interval, churn-select and
 *  churn-phase draws never alias each other. */
constexpr uint64_t kSaltInterval = 0x63726173682d6977ull; // "crash-iw"
constexpr uint64_t kSaltChurnSel = 0x636875726e2d7365ull; // "churn-se"
constexpr uint64_t kSaltChurnPhs = 0x636875726e2d7068ull; // "churn-ph"

/** Top 53 bits of a hash as an integer uniform in [0, 2^53); compared
 *  against probability * 2^53 thresholds so no float enters the
 *  per-node decision. */
uint64_t
draw53(uint64_t x)
{
    return chaosMix(x) >> 11;
}

constexpr uint64_t kNever = ~uint64_t(0);

} // namespace

void
ChaosConfig::validate() const
{
    if (!enabled)
        return;
    if (gatewayMtbfWindows > 0 && gatewayMttrWindows == 0)
        throw FatalError("chaos: gateway MTTR must be >= 1 window");
    if (regionPeriodWindows > 0) {
        if (regionOutageWindows == 0)
            throw FatalError("chaos: regional outage must last >= 1 window");
        if (regionGateways == 0)
            throw FatalError("chaos: region size must be >= 1 gateway");
    }
    for (const ChaosWindowRange &r : cloudOutages)
        if (r.end <= r.begin)
            throw FatalError("chaos: cloud outage window range must have "
                             "begin < end");
    if (churnFraction < 0.0 || churnFraction > 1.0)
        throw FatalError("chaos: churn fraction must be in [0, 1]");
    if (churnFraction > 0.0 &&
        (churnSpreadWindows == 0 || churnAbsenceWindows == 0))
        throw FatalError("chaos: churn spread and absence must be >= 1 "
                         "window");
    if (retryBackoffBaseUs == 0)
        throw FatalError("chaos: retry backoff base must be >= 1 us");
}

ChaosConfig
ChaosConfig::profile(const std::string &name)
{
    ChaosConfig c;
    if (name == "none")
        return c;
    c.enabled = true;
    if (name == "flaky") {
        c.gatewayMtbfWindows = 32;
        c.gatewayMttrWindows = 4;
    } else if (name == "regional") {
        c.regionPeriodWindows = 48;
        c.regionOutageWindows = 6;
        c.regionGateways = 8;
    } else if (name == "churn") {
        c.churnFraction = 0.2;
        c.churnSpreadWindows = 24;
        c.churnAbsenceWindows = 8;
    } else if (name == "harsh") {
        c.gatewayMtbfWindows = 24;
        c.gatewayMttrWindows = 4;
        c.regionPeriodWindows = 64;
        c.regionOutageWindows = 6;
        c.regionGateways = 8;
        c.churnFraction = 0.1;
        c.churnSpreadWindows = 24;
        c.churnAbsenceWindows = 8;
        c.cloudOutages.push_back({8, 16});
    } else {
        throw FatalError("unknown chaos profile '" + name +
                         "' (none, flaky, regional, churn, harsh)");
    }
    return c;
}

const std::vector<std::string> &
ChaosConfig::profileNames()
{
    static const std::vector<std::string> names = {
        "none", "flaky", "regional", "churn", "harsh"};
    return names;
}

ChaosSchedule::ChaosSchedule(const ChaosConfig &config, uint64_t gateways)
    : _config(config), _gateways(gateways),
      _down(static_cast<size_t>(gateways), 0),
      _nextCrash(static_cast<size_t>(gateways), kNever),
      _restartAt(static_cast<size_t>(gateways), kNever),
      _episode(static_cast<size_t>(gateways), 0)
{
    assert(gateways > 0);
    if (_config.gatewayMtbfWindows > 0)
        for (uint64_t g = 0; g < gateways; ++g)
            _nextCrash[static_cast<size_t>(g)] = interval(g, 0);
}

uint64_t
ChaosSchedule::interval(uint64_t gateway, uint64_t episode) const
{
    const uint64_t mtbf = _config.gatewayMtbfWindows;
    if (mtbf == 0)
        return kNever;
    const uint64_t lo = std::max<uint64_t>(1, mtbf / 2);
    const uint64_t draw = chaosMix(_config.seed ^ kSaltInterval ^
                                   (gateway * 0x9e3779b97f4a7c15ull) ^
                                   (episode << 32));
    return lo + draw % mtbf;
}

bool
ChaosSchedule::cloudDown(uint64_t window) const
{
    for (const ChaosWindowRange &r : _config.cloudOutages)
        if (window >= r.begin && window < r.end)
            return true;
    return false;
}

uint64_t
ChaosSchedule::failoverTarget(uint64_t gateway) const
{
    for (uint64_t d = 1; d < _gateways; ++d) {
        const uint64_t candidate = (gateway + d) % _gateways;
        if (!_down[static_cast<size_t>(candidate)])
            return candidate;
    }
    return _gateways;
}

bool
ChaosSchedule::churnWindows(uint64_t node, uint64_t &leave_window,
                            uint64_t &join_window) const
{
    if (_config.churnFraction <= 0.0)
        return false;
    const uint64_t threshold = static_cast<uint64_t>(
        _config.churnFraction * 9007199254740992.0); // * 2^53
    if (draw53(_config.seed ^ kSaltChurnSel ^
               (node * 0x9e3779b97f4a7c15ull)) >= threshold)
        return false;
    const uint64_t phase = chaosMix(_config.seed ^ kSaltChurnPhs ^
                                    (node * 0x9e3779b97f4a7c15ull));
    leave_window = 1 + phase % _config.churnSpreadWindows;
    join_window = leave_window + _config.churnAbsenceWindows;
    return true;
}

void
ChaosSchedule::step(uint64_t window, std::vector<uint32_t> &restarted,
                    std::vector<uint32_t> &crashed)
{
    assert(window >= 1);
    restarted.clear();
    crashed.clear();

    // Restarts due at this boundary come first so a gateway whose
    // repair and next regional outage coincide goes through a full
    // restart/crash cycle (both transitions observable).
    for (uint64_t g = 0; g < _gateways; ++g) {
        const size_t i = static_cast<size_t>(g);
        if (_down[i] && _restartAt[i] <= window) {
            _down[i] = 0;
            _restartAt[i] = kNever;
            --_downCount;
            _nextCrash[i] = _config.gatewayMtbfWindows > 0
                                ? window + interval(g, ++_episode[i])
                                : kNever;
            restarted.push_back(static_cast<uint32_t>(g));
        }
    }

    // Correlated regional outage: every period, the next region of
    // regionGateways consecutive gateways goes dark together.
    if (_config.regionPeriodWindows > 0 &&
        window % _config.regionPeriodWindows == 0) {
        const uint64_t regions =
            (_gateways + _config.regionGateways - 1) / _config.regionGateways;
        const uint64_t region =
            (window / _config.regionPeriodWindows - 1) % regions;
        const uint64_t first = region * _config.regionGateways;
        const uint64_t last =
            std::min(_gateways, first + _config.regionGateways);
        for (uint64_t g = first; g < last; ++g) {
            const size_t i = static_cast<size_t>(g);
            const uint64_t until = window + _config.regionOutageWindows;
            if (!_down[i]) {
                _down[i] = 1;
                ++_downCount;
                _restartAt[i] = until;
                crashed.push_back(static_cast<uint32_t>(g));
            } else if (_restartAt[i] < until) {
                // Already down: the regional outage extends the
                // repair, it does not double-count a crash.
                _restartAt[i] = until;
            }
        }
    }

    // Independent per-gateway crashes.
    for (uint64_t g = 0; g < _gateways; ++g) {
        const size_t i = static_cast<size_t>(g);
        if (!_down[i] && _nextCrash[i] <= window) {
            _down[i] = 1;
            ++_downCount;
            _restartAt[i] = window + _config.gatewayMttrWindows;
            crashed.push_back(static_cast<uint32_t>(g));
        }
    }

    std::sort(restarted.begin(), restarted.end());
    std::sort(crashed.begin(), crashed.end());
}

} // namespace xpro
