/**
 * @file
 * Arbitration policies for the fleet's shared half-duplex radio
 * channel.
 *
 * Every sensor node of a body-sensor network talks to the same
 * aggregator; when several nodes have payloads ready, an arbiter
 * decides who transmits next and when. Two policies are provided:
 *
 *  - FCFS: requests are served strictly in submission order as soon
 *    as the channel is free (the single-node simulator's behaviour,
 *    generalized to many nodes).
 *  - TDMA: time is divided into frames of one fixed-length slot per
 *    node; a node's transfer may only *start* inside one of its own
 *    slots. A transfer longer than a slot keeps the channel and
 *    delays later slots (no mid-payload preemption), which models
 *    the guard-band-free slotting of lightweight BSN MACs.
 *
 * Arbiters are pure policy: given the pending requests and the time
 * the channel frees up, pick one and say when it may start. They are
 * deterministic functions of their inputs, keyed by node order and
 * submission sequence, never by wall clock — the fleet report's
 * byte-exact reproducibility depends on it.
 */

#ifndef XPRO_FLEET_RADIO_SCHED_HH
#define XPRO_FLEET_RADIO_SCHED_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"

namespace xpro
{

/** One queued transfer awaiting the shared channel. */
struct RadioRequest
{
    /** Fleet node index of the transmitting pair. */
    size_t node = 0;
    /** Global submission order (FIFO tie-break). */
    uint64_t sequence = 0;
    /** When the payload became ready to transmit. */
    Time ready;
    /** Channel occupancy once the transfer starts. */
    Time airTime;
};

/** Policy choosing the next transfer on the shared channel. */
class RadioArbiter
{
  public:
    virtual ~RadioArbiter() = default;

    /** Policy tag, e.g. "fcfs". */
    virtual const std::string &name() const = 0;

    /**
     * Choose the next transfer once the channel is free at
     * @p free_at.
     *
     * @param pending Non-empty queued requests.
     * @param free_at Earliest time the channel can carry data.
     * @param start Out: when the chosen transfer begins
     *        (>= free_at).
     * @return Index into @p pending of the chosen request.
     */
    virtual size_t grant(const std::vector<RadioRequest> &pending,
                         Time free_at, Time *start) const = 0;
};

/** First come, first served: strict submission order. */
class FcfsArbiter : public RadioArbiter
{
  public:
    const std::string &name() const override;
    size_t grant(const std::vector<RadioRequest> &pending,
                 Time free_at, Time *start) const override;
};

/** Fixed round-robin slotting: node i owns slot i of every frame. */
class TdmaArbiter : public RadioArbiter
{
  public:
    /**
     * @param node_count Nodes sharing the frame (slot owners
     *        0..node_count-1).
     * @param slot Slot length; must be positive.
     */
    TdmaArbiter(size_t node_count, Time slot);

    const std::string &name() const override;
    size_t grant(const std::vector<RadioRequest> &pending,
                 Time free_at, Time *start) const override;

    /** Start of the first slot owned by @p node at or after @p t. */
    Time nextSlotStart(size_t node, Time t) const;

    /** True if @p t falls inside one of @p node's own slots. */
    bool inOwnSlot(size_t node, Time t) const;

    Time slot() const { return _slot; }
    Time frame() const { return _slot * double(_nodeCount); }

  private:
    size_t _nodeCount;
    Time _slot;
};

} // namespace xpro

#endif // XPRO_FLEET_RADIO_SCHED_HH
