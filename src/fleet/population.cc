/**
 * @file
 * Population-scale fleet simulation (DESIGN.md §16): a million
 * nodes in one process, as struct-of-arrays slabs driven through a
 * sensor -> phone -> edge gateway -> cloud hierarchy on a sharded
 * hierarchical time wheel.
 *
 * Everything the inner loop touches is integer arithmetic on flat
 * arrays: ticks are microseconds, energy is nanojoules, statistics
 * are per-shard sums and maxima. Shards own whole gateways
 * (gateway % shards), so every piece of mutable state — a phone
 * cell's FCFS channel, a phone's per-window compute budget, a
 * gateway's airtime and cloud quota — is touched by exactly one
 * shard, and the per-shard statistics merge by commutative-
 * associative reduction. That is the whole determinism argument:
 * the report is a pure function of the configuration, byte-
 * identical at any shard or worker count.
 */

#include "fleet/fleet.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "obs/stats_registry.hh"
#include "sim/event_queue.hh"

namespace xpro
{

namespace
{

/** Wheel item kinds; part of the (at, node, kind, data) order. */
enum : uint32_t
{
    kInject = 0,  ///< sensor senses event k
    kUplink = 1,  ///< sensor -> phone transfer + phone compute
    kGateway = 2, ///< phone -> gateway transfer + cloud ingest
};

/** data field layout: event index in the low bits, defer count
 *  above (an event is deferred at most a handful of windows). */
constexpr uint32_t kEventBits = 24;
constexpr uint32_t kEventMask = (uint32_t(1) << kEventBits) - 1;

uint32_t
packData(uint64_t event, uint32_t defers)
{
    xproAssert(event <= kEventMask, "event index %llu overflows",
               static_cast<unsigned long long>(event));
    return static_cast<uint32_t>(event) | (defers << kEventBits);
}

/** splitmix64 finalizer: per-node phase stagger, so equal-rate
 *  nodes do not inject in one synchronized mega-slot. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * AdaSense-style duty bands by battery state of charge: full duty
 * above 60%, 3-of-5 events above 30%, 1-of-3 below. Deliberately
 * the same ladder the adaptive controller uses (control/), but the
 * constants are duplicated here — fleet must not depend on control
 * (control already links fleet).
 */
struct DutyBand
{
    uint32_t num;
    uint32_t den;
};

constexpr DutyBand kDutyBands[] = {{1, 1}, {3, 5}, {1, 3}};

uint8_t
dutyBandFor(uint64_t battery, uint64_t capacity)
{
    if (battery * 10 >= capacity * 6)
        return 0;
    if (battery * 10 >= capacity * 3)
        return 1;
    return 2;
}

/** Bresenham-style rational gate: of every @p band.den consecutive
 *  events, exactly @p band.num transmit, evenly spread. */
bool
dutyTransmits(const DutyBand &band, uint64_t event)
{
    return (event * band.num) % band.den < band.num;
}

/** Per-archetype integer accumulators, kept per shard and merged by
 *  sum/max — both commutative and associative, so any grouping of
 *  gateways into shards produces identical totals. */
struct ArchetypeStats
{
    uint64_t completed = 0;
    uint64_t misses = 0;
    uint64_t latencySumUs = 0;
    uint64_t latencyMaxUs = 0;
    uint64_t fallbacks = 0;
    uint64_t suppressed = 0;
};

/** Shard-wide integer accumulators (same merge discipline). */
struct ShardStats
{
    uint64_t deferred = 0;
    uint64_t cloudThrottled = 0;
    uint64_t phoneBusyUs = 0;
    uint64_t gatewayBusyUs = 0;
    uint64_t radioBusyUs = 0;
    uint64_t transfers = 0;
    uint64_t spanMaxUs = 0;
    uint64_t items = 0;
};

/**
 * population.* stats (DESIGN.md section 17). All Stable scope: each
 * is a pure function of the configuration, so snapshots stay
 * byte-identical at any shards x workers combination (tested in
 * test_stats_registry under the obs label). The per-event ones
 * (latency histogram, per-tier admissions/deferrals) are written to
 * per-shard StatsSlabs on the hot path; run-level totals are added
 * straight to the registry once the shard merge is done.
 */
struct PopStatIds
{
    StatId latencyUs;        ///< histogram: inject -> cloud, us
    StatId admittedPhone;    ///< uplinks the phone tier admitted
    StatId admittedGateway;  ///< events the gateway tier admitted
    StatId deferredPhone;    ///< uplinks pushed to the next window
    StatId deferredGateway;  ///< gateway hops pushed back
    StatId completed;
    StatId deadlineMisses;
    StatId localFallbacks;
    StatId dutySuppressed;
    StatId cloudThrottled;
    StatId wheelItems;
    StatId transfers;
};

const PopStatIds &
popStatIds()
{
    static const PopStatIds ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        PopStatIds v;
        v.latencyUs = reg.registerHistogram("population.latency_us");
        v.admittedPhone =
            reg.registerCounter("population.admitted_phone");
        v.admittedGateway =
            reg.registerCounter("population.admitted_gateway");
        v.deferredPhone =
            reg.registerCounter("population.deferred_phone");
        v.deferredGateway =
            reg.registerCounter("population.deferred_gateway");
        v.completed = reg.registerCounter("population.completed");
        v.deadlineMisses =
            reg.registerCounter("population.deadline_misses");
        v.localFallbacks =
            reg.registerCounter("population.local_fallbacks");
        v.dutySuppressed =
            reg.registerCounter("population.duty_suppressed");
        v.cloudThrottled =
            reg.registerCounter("population.cloud_throttled");
        v.wheelItems = reg.registerCounter("population.wheel_items");
        v.transfers = reg.registerCounter("population.transfers");
        return v;
    }();
    return ids;
}

} // namespace

NodeSlabs::NodeSlabs(Arena &arena, uint64_t count, size_t archetypes)
    : _count(count)
{
    xproAssert(count > 0, "slabs need at least one node");
    xproAssert(archetypes > 0 && archetypes <= UINT16_MAX,
               "archetype count %zu out of range", archetypes);
    const size_t n = static_cast<size_t>(count);
    _archetype = arena.alloc<uint16_t>(n);
    _dutyLevel = arena.alloc<uint8_t>(n);
    _eventCursor = arena.alloc<uint32_t>(n);
    _battery = arena.alloc<uint64_t>(n);
    _outageStreak = arena.alloc<uint16_t>(n);
    for (size_t i = 0; i < n; ++i)
        _archetype[i] = static_cast<uint16_t>(i % archetypes);
    std::memset(_dutyLevel, 0, n);
    std::memset(_eventCursor, 0, n * sizeof(uint32_t));
    std::memset(_battery, 0, n * sizeof(uint64_t));
    std::memset(_outageStreak, 0, n * sizeof(uint16_t));
}

std::vector<PopulationArchetype>
syntheticArchetypes()
{
    // Six classes with the cost spread of the paper's test cases:
    // heavy in-sensor ECG cuts through light accelerometer
    // offloads, event rates from 1/s to 8/s. Gateway hops ride a
    // fast backhaul (WiFi/wired), so their airtime is an order of
    // magnitude below the in-cell sensor uplinks.
    std::vector<PopulationArchetype> archetypes(6);
    const char *symbols[6] = {"C1", "C2", "C3", "C4", "C5", "C6"};
    const char *processes[6] = {"90nm", "45nm", "130nm",
                                "90nm", "45nm", "130nm"};
    const uint64_t sensorUs[6] = {4000, 2500, 1500, 3000, 1000, 2000};
    const uint64_t phoneUs[6] = {350, 250, 500, 150, 400, 300};
    const uint64_t uplinkUs[6] = {600, 450, 800, 300, 700, 500};
    const uint64_t gatewayUs[6] = {40, 30, 45, 20, 35, 30};
    const uint64_t energyNj[6] = {90000, 70000, 50000,
                                  80000, 40000, 60000};
    const uint64_t batteryNj[6] = {2000000000ULL, 2000000000ULL,
                                   1500000000ULL, 2500000000ULL,
                                   1000000000ULL, 2000000000ULL};
    const uint64_t periodUs[6] = {500000,  1000000, 250000,
                                  500000, 125000,  1000000};
    const size_t sensorCells[6] = {5, 4, 3, 6, 2, 4};
    const size_t totalCells[6] = {9, 9, 8, 9, 7, 8};
    const double accuracy[6] = {0.93, 0.91, 0.88,
                                0.95, 0.86, 0.90};
    for (size_t i = 0; i < 6; ++i) {
        PopulationArchetype &a = archetypes[i];
        a.symbol = symbols[i];
        a.process = processes[i];
        a.sensorComputeUs = sensorUs[i];
        a.phoneComputeUs = phoneUs[i];
        a.uplinkAirtimeUs = uplinkUs[i];
        a.gatewayAirtimeUs = gatewayUs[i];
        a.eventEnergyNj = energyNj[i];
        a.batteryNj = batteryNj[i];
        a.periodUs = periodUs[i];
        a.sensorCells = sensorCells[i];
        a.totalCells = totalCells[i];
        a.accuracy = accuracy[i];
    }
    return archetypes;
}

PopulationFleetResult
runPopulationFleet(const PopulationFleetConfig &config)
{
    xproAssert(config.nodes > 0, "population fleet needs nodes");
    xproAssert(config.nodes <= UINT32_MAX,
               "node ids must fit the wheel's 32-bit field");
    xproAssert(config.eventsPerNode > 0 &&
                   config.eventsPerNode <= kEventMask,
               "events per node out of range");
    xproAssert(config.windowUs > 0, "need a nonzero sync window");

    const std::vector<PopulationArchetype> classes =
        config.archetypes.empty() ? syntheticArchetypes()
                                  : config.archetypes;
    for (const PopulationArchetype &a : classes) {
        xproAssert(a.sensorComputeUs > 0 && a.uplinkAirtimeUs > 0 &&
                       a.gatewayAirtimeUs > 0 && a.periodUs > 0,
                   "archetype '%s' needs positive integer costs",
                   a.symbol.c_str());
    }

    const TierTopology topo =
        TierTopology::build(config.nodes, config.tiers);
    const TierBudgets budgets =
        TierBudgets::build(config.tiers, topo, config.windowUs);
    const uint64_t window = config.windowUs;

    // A shard owns whole gateways; more shards than gateways (or
    // nodes) would only add empty wheels.
    size_t shards = config.shards > 0 ? config.shards : 1;
    shards = std::min<size_t>(
        shards, static_cast<size_t>(
                    std::min<uint64_t>(topo.gateways, config.nodes)));
    ShardedEventQueue queue(shards, window);

    // SoA node state: five parallel slabs, one arena.
    Arena arena(size_t(1) << 20);
    NodeSlabs slabs(arena, config.nodes, classes.size());
    for (uint64_t n = 0; n < config.nodes; ++n)
        slabs.battery()[n] = classes[slabs.archetype()[n]].batteryNj;

    // Tier state: per-phone and per-gateway scalars, each touched
    // only by the shard that owns the gateway above it. Budget
    // resets are lazy (stamped with the window index) so the
    // barrier has no work to do and no cross-shard writes exist.
    const size_t phones = static_cast<size_t>(topo.phones);
    const size_t gateways = static_cast<size_t>(topo.gateways);
    std::vector<uint64_t> cellFreeAt(phones, 0);
    std::vector<uint64_t> phoneBudgetUs(phones, 0);
    std::vector<uint64_t> phoneStamp(phones, ~uint64_t(0));
    std::vector<uint64_t> gatewayAirUs(gateways, 0);
    std::vector<uint64_t> gatewayQuota(gateways, 0);
    std::vector<uint64_t> gatewayStamp(gateways, ~uint64_t(0));

    std::vector<std::vector<ArchetypeStats>> archStats(
        shards, std::vector<ArchetypeStats>(classes.size()));
    std::vector<ShardStats> shardStats(shards);

    // Telemetry: plain per-shard accumulators — hot-path cost is
    // an ordinary increment into a shard-owned struct, no slab or
    // registry indirection — folded into the global registry once
    // after the run. Folding is pure addition, so the merged totals
    // are independent of the shard grouping (the stable-snapshot
    // contract).
    struct ShardObs {
        uint64_t admittedPhone = 0;
        uint64_t admittedGateway = 0;
        uint64_t deferredPhone = 0;
        uint64_t deferredGateway = 0;
        uint64_t latencySumUs = 0;
        uint64_t
            latencyBuckets[StatsRegistry::kHistogramBuckets] = {};
    };
    const bool collect = kStatsEnabled && config.collectStats;
    const PopStatIds &sids = popStatIds();
    std::vector<ShardObs> obsStats(shards);

    const auto phaseOf = [&](uint64_t node) {
        const PopulationArchetype &a =
            classes[slabs.archetype()[node]];
        return mix64(config.seed + node) % a.periodUs;
    };

    // Seed one pending Inject per node (the event cursor's
    // invariant: a node always has exactly one inject in flight
    // until its last event).
    for (uint64_t n = 0; n < config.nodes; ++n) {
        const size_t s =
            static_cast<size_t>(topo.gatewayOf(n)) % shards;
        queue.shard(s).schedule(
            {phaseOf(n), static_cast<uint32_t>(n), kInject,
             packData(0, 0)});
    }

    const auto deferOrFallback =
        [&](size_t s, const WheelItem &item, uint64_t now) {
            const uint64_t event = item.data & kEventMask;
            const uint32_t defers = item.data >> kEventBits;
            ArchetypeStats &arch =
                archStats[s][slabs.archetype()[item.node]];
            if (defers >= budgets.maxDefers) {
                // Out of patience: classify on the sensor.
                ++arch.fallbacks;
                if (slabs.outageStreak()[item.node] < UINT16_MAX)
                    ++slabs.outageStreak()[item.node];
                return;
            }
            ++shardStats[s].deferred;
            if (collect)
                ++(item.kind == kUplink
                       ? obsStats[s].deferredPhone
                       : obsStats[s].deferredGateway);
            const uint64_t next = (now / window + 1) * window;
            queue.shard(s).schedule({next, item.node, item.kind,
                                     packData(event, defers + 1)});
        };

    const auto onInject = [&](size_t s, const WheelItem &item) {
        const uint64_t n = item.node;
        const uint64_t event = item.data & kEventMask;
        const PopulationArchetype &a =
            classes[slabs.archetype()[n]];
        slabs.eventCursor()[n] =
            static_cast<uint32_t>(event + 1);
        if (event + 1 < config.eventsPerNode) {
            queue.shard(s).schedule(
                {phaseOf(n) + (event + 1) * a.periodUs,
                 item.node, kInject, packData(event + 1, 0)});
        }
        uint64_t &battery = slabs.battery()[n];
        if (battery < a.eventEnergyNj) {
            // Battery exhausted: the node goes dark.
            if (slabs.outageStreak()[n] < UINT16_MAX)
                ++slabs.outageStreak()[n];
            return;
        }
        battery -= a.eventEnergyNj;
        const uint8_t band = dutyBandFor(battery, a.batteryNj);
        slabs.dutyLevel()[n] = band;
        if (!dutyTransmits(kDutyBands[band], event)) {
            ++archStats[s][slabs.archetype()[n]].suppressed;
            return;
        }
        queue.shard(s).schedule(
            {item.at + a.sensorComputeUs, item.node, kUplink,
             packData(event, 0)});
    };

    const auto onUplink = [&](size_t s, const WheelItem &item) {
        const uint64_t n = item.node;
        const PopulationArchetype &a =
            classes[slabs.archetype()[n]];
        const size_t phone =
            static_cast<size_t>(topo.phoneOf(n));
        const uint64_t w = item.at / window;
        if (phoneStamp[phone] != w) {
            phoneStamp[phone] = w;
            phoneBudgetUs[phone] = budgets.phoneCpuUsPerWindow;
        }
        if (phoneBudgetUs[phone] < a.phoneComputeUs) {
            deferOrFallback(s, item, item.at);
            return;
        }
        phoneBudgetUs[phone] -= a.phoneComputeUs;
        if (collect)
            ++obsStats[s].admittedPhone;
        // Cell-local FCFS channel: one scalar per phone cell.
        const uint64_t start =
            std::max(item.at, cellFreeAt[phone]);
        cellFreeAt[phone] = start + a.uplinkAirtimeUs;
        shardStats[s].radioBusyUs += a.uplinkAirtimeUs;
        shardStats[s].phoneBusyUs += a.phoneComputeUs;
        ++shardStats[s].transfers;
        queue.shard(s).schedule(
            {start + a.uplinkAirtimeUs + a.phoneComputeUs,
             item.node, kGateway,
             packData(item.data & kEventMask,
                      item.data >> kEventBits)});
    };

    const auto onGateway = [&](size_t s, const WheelItem &item) {
        const uint64_t n = item.node;
        const PopulationArchetype &a =
            classes[slabs.archetype()[n]];
        const size_t gateway =
            static_cast<size_t>(topo.gatewayOf(n));
        const uint64_t w = item.at / window;
        if (gatewayStamp[gateway] != w) {
            gatewayStamp[gateway] = w;
            gatewayAirUs[gateway] =
                budgets.gatewayAirtimeUsPerWindow;
            gatewayQuota[gateway] =
                budgets.cloudEventsPerGatewayPerWindow;
        }
        if (gatewayAirUs[gateway] < a.gatewayAirtimeUs) {
            deferOrFallback(s, item, item.at);
            return;
        }
        if (gatewayQuota[gateway] == 0) {
            ++shardStats[s].cloudThrottled;
            deferOrFallback(s, item, item.at);
            return;
        }
        gatewayAirUs[gateway] -= a.gatewayAirtimeUs;
        --gatewayQuota[gateway];
        shardStats[s].gatewayBusyUs += a.gatewayAirtimeUs;
        ++shardStats[s].transfers;
        const uint64_t completion = item.at + a.gatewayAirtimeUs;
        const uint64_t event = item.data & kEventMask;
        const uint64_t injectedAt =
            phaseOf(n) + event * a.periodUs;
        const uint64_t latency = completion - injectedAt;
        ArchetypeStats &arch =
            archStats[s][slabs.archetype()[n]];
        ++arch.completed;
        arch.latencySumUs += latency;
        arch.latencyMaxUs = std::max(arch.latencyMaxUs, latency);
        if (collect) {
            ShardObs &obs = obsStats[s];
            ++obs.admittedGateway;
            obs.latencySumUs += latency;
            ++obs.latencyBuckets[StatsRegistry::bucketOf(latency)];
        }
        if (latency > a.periodUs)
            ++arch.misses;
        shardStats[s].spanMaxUs =
            std::max(shardStats[s].spanMaxUs, completion);
        slabs.outageStreak()[n] = 0;
    };

    WorkerPool pool(config.workers);
    uint64_t windows = 0;
    queue.run(
        pool,
        [&](size_t s, const WheelItem &item) {
            ++shardStats[s].items;
            switch (item.kind) {
            case kInject:
                onInject(s, item);
                break;
            case kUplink:
                onUplink(s, item);
                break;
            case kGateway:
                onGateway(s, item);
                break;
            default:
                panic("unknown wheel item kind %u", item.kind);
            }
        },
        [&](uint64_t w, uint64_t) { windows = w + 1; });

    // Merge: plain sums and maxima over the per-shard accumulators,
    // in either order — the totals are shard-grouping-independent.
    std::vector<ArchetypeStats> arch(classes.size());
    ShardStats total;
    for (size_t s = 0; s < shards; ++s) {
        for (size_t a = 0; a < classes.size(); ++a) {
            arch[a].completed += archStats[s][a].completed;
            arch[a].misses += archStats[s][a].misses;
            arch[a].latencySumUs += archStats[s][a].latencySumUs;
            arch[a].latencyMaxUs = std::max(
                arch[a].latencyMaxUs, archStats[s][a].latencyMaxUs);
            arch[a].fallbacks += archStats[s][a].fallbacks;
            arch[a].suppressed += archStats[s][a].suppressed;
        }
        total.deferred += shardStats[s].deferred;
        total.cloudThrottled += shardStats[s].cloudThrottled;
        total.phoneBusyUs += shardStats[s].phoneBusyUs;
        total.gatewayBusyUs += shardStats[s].gatewayBusyUs;
        total.radioBusyUs += shardStats[s].radioBusyUs;
        total.transfers += shardStats[s].transfers;
        total.spanMaxUs =
            std::max(total.spanMaxUs, shardStats[s].spanMaxUs);
        total.items += shardStats[s].items;
    }

    // Report assembly is the only place doubles appear; every input
    // is an integer that is already shard/worker-independent.
    PopulationFleetResult result;
    FleetReport &report = result.report;
    report.policy = "tiered-fcfs";
    report.nodeCount = static_cast<size_t>(config.nodes);
    const double span_us =
        static_cast<double>(total.spanMaxUs);
    report.spanMs = span_us / 1000.0;
    report.radioBusyMs =
        static_cast<double>(total.radioBusyUs) / 1000.0;
    // Occupancy is per cell channel (phones) — the population path
    // has no single shared radio to saturate.
    report.radioOccupancy =
        span_us > 0.0 ? static_cast<double>(total.radioBusyUs) /
                            (span_us *
                             static_cast<double>(topo.phones))
                      : 0.0;
    report.transfers = static_cast<size_t>(total.transfers);
    report.aggregatorBusyMs =
        static_cast<double>(total.phoneBusyUs) / 1000.0;
    report.aggregatorUtilization =
        span_us > 0.0 ? static_cast<double>(total.phoneBusyUs) /
                            (span_us *
                             static_cast<double>(topo.phones))
                      : 0.0;
    report.aggregatorCpuShare =
        config.tiers.phone.maxCpuUtilization;
    report.aggregatorPowerUw = 0.0;
    report.aggregatorLifetimeHours = 0.0;
    for (size_t a = 0; a < classes.size(); ++a) {
        const PopulationArchetype &cls = classes[a];
        FleetNodeReportRow row;
        row.symbol = cls.symbol;
        row.process = cls.process;
        row.admission = "tiered";
        row.sensorCells = cls.sensorCells;
        row.totalCells = cls.totalCells;
        row.accuracy = cls.accuracy;
        row.eventsPerSecond =
            1e6 / static_cast<double>(cls.periodUs);
        // Lifetime: battery over steady-state event energy draw.
        const double joules_per_sec =
            static_cast<double>(cls.eventEnergyNj) * 1e-9 *
            row.eventsPerSecond;
        row.sensorLifetimeHours =
            joules_per_sec > 0.0
                ? static_cast<double>(cls.batteryNj) * 1e-9 /
                      joules_per_sec / 3600.0
                : 0.0;
        row.events = static_cast<size_t>(arch[a].completed);
        row.deadlineMisses = static_cast<size_t>(arch[a].misses);
        row.meanLatencyMs =
            arch[a].completed > 0
                ? static_cast<double>(arch[a].latencySumUs) /
                      static_cast<double>(arch[a].completed) /
                      1000.0
                : 0.0;
        row.worstLatencyMs =
            static_cast<double>(arch[a].latencyMaxUs) / 1000.0;
        row.aggregatorPowerUw = 0.0;
        report.totalEvents += row.events;
        report.totalDeadlineMisses += row.deadlineMisses;
        report.rows.push_back(std::move(row));
    }
    TiersReport &tiers = report.tiers;
    tiers.enabled = true;
    tiers.sensorsPerPhone = topo.sensorsPerPhone;
    tiers.phonesPerGateway = topo.phonesPerGateway;
    tiers.phones = static_cast<size_t>(topo.phones);
    tiers.gateways = static_cast<size_t>(topo.gateways);
    tiers.windows = static_cast<size_t>(windows);
    tiers.deferredUplinks = static_cast<size_t>(total.deferred);
    tiers.cloudThrottled =
        static_cast<size_t>(total.cloudThrottled);
    tiers.phoneBusyMs =
        static_cast<double>(total.phoneBusyUs) / 1000.0;
    tiers.gatewayBusyMs =
        static_cast<double>(total.gatewayBusyUs) / 1000.0;
    for (size_t a = 0; a < classes.size(); ++a) {
        tiers.localFallbacks +=
            static_cast<size_t>(arch[a].fallbacks);
        tiers.dutySuppressed +=
            static_cast<size_t>(arch[a].suppressed);
    }

    if (collect) {
        StatsRegistry &reg = StatsRegistry::instance();
        ShardObs folded;
        for (const ShardObs &obs : obsStats) {
            folded.admittedPhone += obs.admittedPhone;
            folded.admittedGateway += obs.admittedGateway;
            folded.deferredPhone += obs.deferredPhone;
            folded.deferredGateway += obs.deferredGateway;
            folded.latencySumUs += obs.latencySumUs;
            for (uint32_t b = 0;
                 b < StatsRegistry::kHistogramBuckets; ++b)
                folded.latencyBuckets[b] += obs.latencyBuckets[b];
        }
        reg.add(sids.admittedPhone, folded.admittedPhone);
        reg.add(sids.admittedGateway, folded.admittedGateway);
        reg.add(sids.deferredPhone, folded.deferredPhone);
        reg.add(sids.deferredGateway, folded.deferredGateway);
        reg.mergeHistogram(sids.latencyUs, folded.latencySumUs,
                           folded.latencyBuckets,
                           StatsRegistry::kHistogramBuckets);
        // Run-level totals, published from the merged accumulators
        // (already shard-grouping-independent by construction).
        reg.add(sids.completed, report.totalEvents);
        reg.add(sids.deadlineMisses, report.totalDeadlineMisses);
        reg.add(sids.localFallbacks, tiers.localFallbacks);
        reg.add(sids.dutySuppressed, tiers.dutySuppressed);
        reg.add(sids.cloudThrottled, total.cloudThrottled);
        reg.add(sids.wheelItems, total.items);
        reg.add(sids.transfers, total.transfers);
    }

    result.simulatedEvents = total.items;
    result.effectiveShards = shards;
    result.bytesPerNode = NodeSlabs::bytesPerNode();
    return result;
}

} // namespace xpro
