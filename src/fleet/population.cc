/**
 * @file
 * Population-scale fleet simulation (DESIGN.md §16): a million
 * nodes in one process, as struct-of-arrays slabs driven through a
 * sensor -> phone -> edge gateway -> cloud hierarchy on a sharded
 * hierarchical time wheel.
 *
 * Everything the inner loop touches is integer arithmetic on flat
 * arrays: ticks are microseconds, energy is nanojoules, statistics
 * are per-shard sums and maxima. Shards own whole gateways
 * (gateway % shards), so every piece of mutable state — a phone
 * cell's FCFS channel, a phone's per-window compute budget, a
 * gateway's airtime and cloud quota — is touched by exactly one
 * shard, and the per-shard statistics merge by commutative-
 * associative reduction. That is the whole determinism argument:
 * the report is a pure function of the configuration, byte-
 * identical at any shard or worker count.
 */

#include "fleet/fleet.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"
#include "obs/stats_registry.hh"
#include "sim/event_queue.hh"

namespace xpro
{

namespace
{

/** Wheel item kinds; part of the (at, node, kind, data) order. */
enum : uint32_t
{
    kInject = 0,  ///< sensor senses event k
    kUplink = 1,  ///< sensor -> phone transfer + phone compute
    kGateway = 2, ///< phone -> gateway transfer + cloud ingest
};

/** data field layout: event index in the low bits, defer count
 *  above (an event is deferred at most a handful of windows). */
constexpr uint32_t kEventBits = 24;
constexpr uint32_t kEventMask = (uint32_t(1) << kEventBits) - 1;

uint32_t
packData(uint64_t event, uint32_t defers)
{
    xproAssert(event <= kEventMask, "event index %llu overflows",
               static_cast<unsigned long long>(event));
    return static_cast<uint32_t>(event) | (defers << kEventBits);
}

/** splitmix64 finalizer: per-node phase stagger, so equal-rate
 *  nodes do not inject in one synchronized mega-slot. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/**
 * AdaSense-style duty bands by battery state of charge: full duty
 * above 60%, 3-of-5 events above 30%, 1-of-3 below. Deliberately
 * the same ladder the adaptive controller uses (control/), but the
 * constants are duplicated here — fleet must not depend on control
 * (control already links fleet).
 */
struct DutyBand
{
    uint32_t num;
    uint32_t den;
};

constexpr DutyBand kDutyBands[] = {{1, 1}, {3, 5}, {1, 3}};

uint8_t
dutyBandFor(uint64_t battery, uint64_t capacity)
{
    if (battery * 10 >= capacity * 6)
        return 0;
    if (battery * 10 >= capacity * 3)
        return 1;
    return 2;
}

/** Bresenham-style rational gate: of every @p band.den consecutive
 *  events, exactly @p band.num transmit, evenly spread. */
bool
dutyTransmits(const DutyBand &band, uint64_t event)
{
    return (event * band.num) % band.den < band.num;
}

/** Per-archetype integer accumulators, kept per shard and merged by
 *  sum/max — both commutative and associative, so any grouping of
 *  gateways into shards produces identical totals. */
struct ArchetypeStats
{
    uint64_t completed = 0;
    uint64_t misses = 0;
    uint64_t latencySumUs = 0;
    uint64_t latencyMaxUs = 0;
    uint64_t fallbacks = 0;
    uint64_t suppressed = 0;
    /** Fallbacks caused by ARQ exhaustion on a faulty uplink (a
     *  subset of fallbacks; feeds the per-row degraded counts). */
    uint64_t arqAbandoned = 0;
};

/** Shard-wide integer accumulators (same merge discipline). */
struct ShardStats
{
    uint64_t deferred = 0;
    uint64_t cloudThrottled = 0;
    uint64_t phoneBusyUs = 0;
    uint64_t gatewayBusyUs = 0;
    uint64_t radioBusyUs = 0;
    uint64_t transfers = 0;
    uint64_t spanMaxUs = 0;
    uint64_t items = 0;
    // Chaos-layer counters (all zero when chaos is off).
    uint64_t chaosRetries = 0;      ///< backoff re-schedules
    uint64_t gatewayLocal = 0;      ///< completed sans cloud
    uint64_t blackoutFallbacks = 0; ///< no reachable gateway
    uint64_t replayed = 0;          ///< injects sensed late
    // Fault-profile (ARQ) counters (zero when faults are off).
    uint64_t faultOffered = 0;
    uint64_t faultDelivered = 0;
    uint64_t faultAbandoned = 0;
    uint64_t faultAttempts = 0;
};

/**
 * population.* stats (DESIGN.md section 17). All Stable scope: each
 * is a pure function of the configuration, so snapshots stay
 * byte-identical at any shards x workers combination (tested in
 * test_stats_registry under the obs label). The per-event ones
 * (latency histogram, per-tier admissions/deferrals) are written to
 * per-shard StatsSlabs on the hot path; run-level totals are added
 * straight to the registry once the shard merge is done.
 */
struct PopStatIds
{
    StatId latencyUs;        ///< histogram: inject -> cloud, us
    StatId admittedPhone;    ///< uplinks the phone tier admitted
    StatId admittedGateway;  ///< events the gateway tier admitted
    StatId deferredPhone;    ///< uplinks pushed to the next window
    StatId deferredGateway;  ///< gateway hops pushed back
    StatId completed;
    StatId deadlineMisses;
    StatId localFallbacks;
    StatId dutySuppressed;
    StatId cloudThrottled;
    StatId wheelItems;
    StatId transfers;
    StatId chaosFailovers;  ///< gateway deaths with a live target
    StatId chaosMigrations; ///< node re-homings (incl. fail-backs)
    StatId chaosRetries;    ///< backoff retries scheduled
};

const PopStatIds &
popStatIds()
{
    static const PopStatIds ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        PopStatIds v;
        v.latencyUs = reg.registerHistogram("population.latency_us");
        v.admittedPhone =
            reg.registerCounter("population.admitted_phone");
        v.admittedGateway =
            reg.registerCounter("population.admitted_gateway");
        v.deferredPhone =
            reg.registerCounter("population.deferred_phone");
        v.deferredGateway =
            reg.registerCounter("population.deferred_gateway");
        v.completed = reg.registerCounter("population.completed");
        v.deadlineMisses =
            reg.registerCounter("population.deadline_misses");
        v.localFallbacks =
            reg.registerCounter("population.local_fallbacks");
        v.dutySuppressed =
            reg.registerCounter("population.duty_suppressed");
        v.cloudThrottled =
            reg.registerCounter("population.cloud_throttled");
        v.wheelItems = reg.registerCounter("population.wheel_items");
        v.transfers = reg.registerCounter("population.transfers");
        v.chaosFailovers =
            reg.registerCounter("population.chaos_failovers");
        v.chaosMigrations =
            reg.registerCounter("population.chaos_migrations");
        v.chaosRetries =
            reg.registerCounter("population.chaos_retries");
        return v;
    }();
    return ids;
}

/**
 * The shared FaultProfile pre-baked for the population hot loop:
 * probabilities scaled to integer 53-bit thresholds and ARQ backoffs
 * to integer microseconds, so the per-attempt path is hash-compare-
 * add only. Unlike the detailed path's LossProcess (one sequential
 * Rng chain per link), every draw here is a stateless splitmix64
 * hash of (seed, node, event, attempt) — the same burst statistics,
 * but no draw order to depend on, so the report stays byte-identical
 * at any shards x workers combination.
 */
struct LinkFaultModel
{
    bool enabled = false;
    uint64_t seed = 0;
    uint64_t lossGood53 = 0;
    uint64_t lossBad53 = 0;
    uint64_t goodToBad53 = 0;
    uint64_t badToGood53 = 0;
    uint32_t maxRetries = 0;
    std::vector<uint64_t> backoffUs; ///< wait after retry r fails

    static LinkFaultModel
    build(const FaultProfile &faults)
    {
        LinkFaultModel m;
        if (!faults.enabled)
            return m;
        const auto scale53 = [](double p) {
            p = std::min(1.0, std::max(0.0, p));
            return static_cast<uint64_t>(p * 9007199254740992.0);
        };
        m.enabled = true;
        m.seed = faults.seed;
        m.lossGood53 = scale53(faults.burst.lossGood);
        m.lossBad53 = scale53(faults.burst.lossBad);
        m.goodToBad53 = scale53(faults.burst.pGoodToBad);
        m.badToGood53 = scale53(faults.burst.pBadToGood);
        m.maxRetries = static_cast<uint32_t>(faults.arq.maxRetries);
        for (size_t r = 0; r < faults.arq.maxRetries; ++r)
            m.backoffUs.push_back(static_cast<uint64_t>(
                std::llround(faults.arq.backoff(r).us())));
        return m;
    }
};

} // namespace

NodeSlabs::NodeSlabs(Arena &arena, uint64_t count, size_t archetypes)
    : _count(count)
{
    xproAssert(count > 0, "slabs need at least one node");
    xproAssert(archetypes > 0 && archetypes <= UINT16_MAX,
               "archetype count %zu out of range", archetypes);
    const size_t n = static_cast<size_t>(count);
    _archetype = arena.alloc<uint16_t>(n);
    _dutyLevel = arena.alloc<uint8_t>(n);
    _eventCursor = arena.alloc<uint32_t>(n);
    _battery = arena.alloc<uint64_t>(n);
    _outageStreak = arena.alloc<uint16_t>(n);
    _gateway = arena.alloc<uint32_t>(n);
    _churnLeave = arena.alloc<uint32_t>(n);
    _churnJoin = arena.alloc<uint32_t>(n);
    _linkBad = arena.alloc<uint8_t>(n);
    for (size_t i = 0; i < n; ++i)
        _archetype[i] = static_cast<uint16_t>(i % archetypes);
    std::memset(_dutyLevel, 0, n);
    std::memset(_eventCursor, 0, n * sizeof(uint32_t));
    std::memset(_battery, 0, n * sizeof(uint64_t));
    std::memset(_outageStreak, 0, n * sizeof(uint16_t));
    std::memset(_gateway, 0, n * sizeof(uint32_t));
    // ~0 = "never churns"; the chaos setup overwrites churners.
    std::memset(_churnLeave, 0xFF, n * sizeof(uint32_t));
    std::memset(_churnJoin, 0xFF, n * sizeof(uint32_t));
    std::memset(_linkBad, 0, n);
}

std::vector<PopulationArchetype>
syntheticArchetypes()
{
    // Six classes with the cost spread of the paper's test cases:
    // heavy in-sensor ECG cuts through light accelerometer
    // offloads, event rates from 1/s to 8/s. Gateway hops ride a
    // fast backhaul (WiFi/wired), so their airtime is an order of
    // magnitude below the in-cell sensor uplinks.
    std::vector<PopulationArchetype> archetypes(6);
    const char *symbols[6] = {"C1", "C2", "C3", "C4", "C5", "C6"};
    const char *processes[6] = {"90nm", "45nm", "130nm",
                                "90nm", "45nm", "130nm"};
    const uint64_t sensorUs[6] = {4000, 2500, 1500, 3000, 1000, 2000};
    const uint64_t phoneUs[6] = {350, 250, 500, 150, 400, 300};
    const uint64_t uplinkUs[6] = {600, 450, 800, 300, 700, 500};
    const uint64_t gatewayUs[6] = {40, 30, 45, 20, 35, 30};
    const uint64_t energyNj[6] = {90000, 70000, 50000,
                                  80000, 40000, 60000};
    const uint64_t batteryNj[6] = {2000000000ULL, 2000000000ULL,
                                   1500000000ULL, 2500000000ULL,
                                   1000000000ULL, 2000000000ULL};
    const uint64_t periodUs[6] = {500000,  1000000, 250000,
                                  500000, 125000,  1000000};
    const size_t sensorCells[6] = {5, 4, 3, 6, 2, 4};
    const size_t totalCells[6] = {9, 9, 8, 9, 7, 8};
    const double accuracy[6] = {0.93, 0.91, 0.88,
                                0.95, 0.86, 0.90};
    for (size_t i = 0; i < 6; ++i) {
        PopulationArchetype &a = archetypes[i];
        a.symbol = symbols[i];
        a.process = processes[i];
        a.sensorComputeUs = sensorUs[i];
        a.phoneComputeUs = phoneUs[i];
        a.uplinkAirtimeUs = uplinkUs[i];
        a.gatewayAirtimeUs = gatewayUs[i];
        a.eventEnergyNj = energyNj[i];
        a.batteryNj = batteryNj[i];
        a.periodUs = periodUs[i];
        a.sensorCells = sensorCells[i];
        a.totalCells = totalCells[i];
        a.accuracy = accuracy[i];
    }
    return archetypes;
}

PopulationFleetResult
runPopulationFleet(const PopulationFleetConfig &config)
{
    xproAssert(config.nodes > 0, "population fleet needs nodes");
    xproAssert(config.nodes <= UINT32_MAX,
               "node ids must fit the wheel's 32-bit field");
    xproAssert(config.eventsPerNode > 0 &&
                   config.eventsPerNode <= kEventMask,
               "events per node out of range");
    xproAssert(config.windowUs > 0, "need a nonzero sync window");

    const std::vector<PopulationArchetype> classes =
        config.archetypes.empty() ? syntheticArchetypes()
                                  : config.archetypes;
    for (const PopulationArchetype &a : classes) {
        xproAssert(a.sensorComputeUs > 0 && a.uplinkAirtimeUs > 0 &&
                       a.gatewayAirtimeUs > 0 && a.periodUs > 0,
                   "archetype '%s' needs positive integer costs",
                   a.symbol.c_str());
    }

    const TierTopology topo =
        TierTopology::build(config.nodes, config.tiers);
    const TierBudgets budgets =
        TierBudgets::build(config.tiers, topo, config.windowUs);
    const uint64_t window = config.windowUs;

    // A shard owns whole gateways; more shards than gateways (or
    // nodes) would only add empty wheels.
    size_t shards = config.shards > 0 ? config.shards : 1;
    shards = std::min<size_t>(
        shards, static_cast<size_t>(
                    std::min<uint64_t>(topo.gateways, config.nodes)));
    ShardedEventQueue queue(shards, window);

    // SoA node state: nine parallel slabs, one arena.
    Arena arena(size_t(1) << 20);
    NodeSlabs slabs(arena, config.nodes, classes.size());
    for (uint64_t n = 0; n < config.nodes; ++n) {
        slabs.battery()[n] = classes[slabs.archetype()[n]].batteryNj;
        slabs.gateway()[n] =
            static_cast<uint32_t>(topo.gatewayOf(n));
    }

    // Chaos layer (DESIGN.md §18). Everything below is a pure
    // function of the configuration: the schedule advances only at
    // barriers (single-threaded) and shard drains only read the
    // frozen down map, so chaos runs keep the shards x workers
    // byte-identity. With chaos disabled every hot-path check below
    // is guarded off and the run reproduces the legacy bytes.
    const ChaosConfig &chaos = config.chaos;
    const bool chaosOn = chaos.enabled;
    if (chaosOn)
        chaos.validate();
    ChaosSchedule sched(chaos, topo.gateways);
    const uint8_t *downMap = sched.downMap().data();

    // Shared fault profile on the sensor uplink (the detailed
    // path's Gilbert-Elliott/ARQ knobs, hash-draw edition).
    const FaultProfile &faults = config.faults;
    if (faults.enabled)
        faults.validate();
    const LinkFaultModel link = LinkFaultModel::build(faults);
    const auto faultDraw = [&](uint64_t node, uint64_t event,
                               uint32_t attempt, uint64_t salt) {
        uint64_t h = mix64(link.seed ^
                           (node * 0x9e3779b97f4a7c15ULL));
        h = mix64(h ^ (event * 0x100000001b3ULL) ^
                  (uint64_t(attempt) << 40) ^ salt);
        return h >> 11; // uniform in [0, 2^53)
    };

    // Churn assignments, precomputed into slabs plus a sorted
    // boundary agenda the barrier walks with one cursor.
    struct ChurnEvent
    {
        uint64_t window;
        uint32_t node;
        uint8_t leave;
    };
    std::vector<ChurnEvent> churnAgenda;
    if (chaosOn && chaos.churnFraction > 0.0) {
        for (uint64_t n = 0; n < config.nodes; ++n) {
            uint64_t leave = 0, join = 0;
            if (!sched.churnWindows(n, leave, join))
                continue;
            slabs.churnLeave()[n] = static_cast<uint32_t>(leave);
            slabs.churnJoin()[n] = static_cast<uint32_t>(join);
            churnAgenda.push_back(
                {leave, static_cast<uint32_t>(n), 1});
            churnAgenda.push_back(
                {join, static_cast<uint32_t>(n), 0});
        }
        std::sort(churnAgenda.begin(), churnAgenda.end(),
                  [](const ChurnEvent &a, const ChurnEvent &b) {
                      if (a.window != b.window)
                          return a.window < b.window;
                      return a.node < b.node;
                  });
    }
    size_t churnCursor = 0;

    // Barrier-owned chaos bookkeeping.
    struct ChaosTotals
    {
        uint64_t gatewayCrashes = 0;
        uint64_t gatewayRestarts = 0;
        uint64_t failovers = 0;
        uint64_t migratedNodes = 0;
        uint64_t failbackNodes = 0;
        uint64_t rekeyedItems = 0;
        uint64_t droppedEvents = 0;
        uint64_t parkedInjects = 0;
        uint64_t churnLeaves = 0;
        uint64_t churnJoins = 0;
        uint64_t gatewayDownWindows = 0;
        uint64_t cloudDownWindows = 0;
        uint64_t handoverUs = 0;
        uint64_t droppedEpisodes = 0;
    };
    ChaosTotals ct;
    constexpr size_t kMaxEpisodes = 256;
    std::vector<ChaosEpisode> chaosEpisodes;
    std::vector<uint8_t> migratedNow(chaosOn ? config.nodes : 0, 0);
    std::vector<uint8_t> leavingNow(chaosOn ? config.nodes : 0, 0);
    // Which shards can hold items the next drop/re-key pass is
    // after: every item of node n lives in n's serving-gateway
    // shard, so the barrier scans only the touched source wheels.
    std::vector<uint8_t> srcShards(chaosOn ? shards : 0, 0);
    std::vector<uint32_t> migratedList;
    std::vector<uint32_t> leaverList;
    std::vector<uint32_t> displaced; ///< nodes away from native
    std::vector<uint32_t> restartedGw;
    std::vector<uint32_t> crashedGw;
    const auto recordEpisode = [&](uint64_t at_us, const char *kind,
                                   uint64_t gateway, size_t nodes) {
        if (chaosEpisodes.size() < kMaxEpisodes)
            chaosEpisodes.push_back(
                {static_cast<double>(at_us) / 1000.0, kind,
                 static_cast<size_t>(gateway), nodes});
        else
            ++ct.droppedEpisodes;
    };

    // Tier state: per-phone and per-gateway scalars, each touched
    // only by the shard that owns the gateway above it. Budget
    // resets are lazy (stamped with the window index) so the
    // barrier has no work to do and no cross-shard writes exist.
    const size_t phones = static_cast<size_t>(topo.phones);
    const size_t gateways = static_cast<size_t>(topo.gateways);
    std::vector<uint64_t> cellFreeAt(phones, 0);
    std::vector<uint64_t> phoneBudgetUs(phones, 0);
    std::vector<uint64_t> phoneStamp(phones, ~uint64_t(0));
    std::vector<uint64_t> gatewayAirUs(gateways, 0);
    std::vector<uint64_t> gatewayQuota(gateways, 0);
    std::vector<uint64_t> gatewayStamp(gateways, ~uint64_t(0));

    std::vector<std::vector<ArchetypeStats>> archStats(
        shards, std::vector<ArchetypeStats>(classes.size()));
    std::vector<ShardStats> shardStats(shards);
    // retryHist[s][a-1] = packets delivered on attempt a (per-shard,
    // merged by addition like every other accumulator).
    std::vector<std::vector<uint64_t>> retryHist(
        shards, std::vector<uint64_t>(
                    link.enabled ? link.maxRetries + 1 : 0, 0));

    // Telemetry: plain per-shard accumulators — hot-path cost is
    // an ordinary increment into a shard-owned struct, no slab or
    // registry indirection — folded into the global registry once
    // after the run. Folding is pure addition, so the merged totals
    // are independent of the shard grouping (the stable-snapshot
    // contract).
    struct ShardObs {
        uint64_t admittedPhone = 0;
        uint64_t admittedGateway = 0;
        uint64_t deferredPhone = 0;
        uint64_t deferredGateway = 0;
        uint64_t latencySumUs = 0;
        uint64_t
            latencyBuckets[StatsRegistry::kHistogramBuckets] = {};
    };
    const bool collect = kStatsEnabled && config.collectStats;
    const PopStatIds &sids = popStatIds();
    std::vector<ShardObs> obsStats(shards);

    const auto phaseOf = [&](uint64_t node) {
        const PopulationArchetype &a =
            classes[slabs.archetype()[node]];
        return mix64(config.seed + node) % a.periodUs;
    };

    // Seed one pending Inject per node (the event cursor's
    // invariant: a node always has exactly one inject in flight
    // until its last event).
    for (uint64_t n = 0; n < config.nodes; ++n) {
        const size_t s =
            static_cast<size_t>(topo.gatewayOf(n)) % shards;
        queue.shard(s).schedule(
            {phaseOf(n), static_cast<uint32_t>(n), kInject,
             packData(0, 0)});
    }

    const auto deferOrFallback =
        [&](size_t s, const WheelItem &item, uint64_t now) {
            const uint64_t event = item.data & kEventMask;
            const uint32_t defers = item.data >> kEventBits;
            ArchetypeStats &arch =
                archStats[s][slabs.archetype()[item.node]];
            if (defers >= budgets.maxDefers) {
                // Out of patience: classify on the sensor.
                ++arch.fallbacks;
                if (slabs.outageStreak()[item.node] < UINT16_MAX)
                    ++slabs.outageStreak()[item.node];
                return;
            }
            ++shardStats[s].deferred;
            if (collect)
                ++(item.kind == kUplink
                       ? obsStats[s].deferredPhone
                       : obsStats[s].deferredGateway);
            uint64_t next;
            if (chaosOn) {
                // Chaos runs retry with deterministic exponential
                // backoff + jitter instead of bare window-parking:
                // the delay is a pure function of the item, so it is
                // the same in any shard grouping. A retry never
                // lands before the next window boundary — the tier
                // budgets it ran out of only refresh there, so an
                // intra-window retry would burn a defer for nothing.
                uint64_t delay = chaos.retryBackoffBaseUs << defers;
                if (chaos.retryJitterUs > 0)
                    delay += mix64(chaos.seed ^
                                   (uint64_t(item.node) *
                                    0x9e3779b97f4a7c15ULL) ^
                                   (uint64_t(item.kind) << 48) ^
                                   item.data) %
                             chaos.retryJitterUs;
                next = std::max(now + delay,
                                (now / window + 1) * window);
                ++shardStats[s].chaosRetries;
            } else {
                next = (now / window + 1) * window;
            }
            queue.shard(s).schedule({next, item.node, item.kind,
                                     packData(event, defers + 1)});
        };

    const auto onInject = [&](size_t s, const WheelItem &item) {
        const uint64_t n = item.node;
        const uint64_t event = item.data & kEventMask;
        const PopulationArchetype &a =
            classes[slabs.archetype()[n]];
        slabs.eventCursor()[n] =
            static_cast<uint32_t>(event + 1);
        if (chaosOn && item.at > phaseOf(n) + event * a.periodUs)
            ++shardStats[s].replayed; // sensed late: churn replay
        if (event + 1 < config.eventsPerNode) {
            // A replayed inject (parked past its analytic time by a
            // churn absence) pushes the successor to at+1, so a
            // rejoining node replays its backlog one tick apart. In
            // chaos-free runs item.at IS the analytic time and the
            // clamp never fires.
            uint64_t next_at =
                phaseOf(n) + (event + 1) * a.periodUs;
            if (next_at <= item.at)
                next_at = item.at + 1;
            queue.shard(s).schedule(
                {next_at, item.node, kInject,
                 packData(event + 1, 0)});
        }
        uint64_t &battery = slabs.battery()[n];
        if (battery < a.eventEnergyNj) {
            // Battery exhausted: the node goes dark.
            if (slabs.outageStreak()[n] < UINT16_MAX)
                ++slabs.outageStreak()[n];
            return;
        }
        battery -= a.eventEnergyNj;
        const uint8_t band = dutyBandFor(battery, a.batteryNj);
        slabs.dutyLevel()[n] = band;
        if (!dutyTransmits(kDutyBands[band], event)) {
            ++archStats[s][slabs.archetype()[n]].suppressed;
            return;
        }
        queue.shard(s).schedule(
            {item.at + a.sensorComputeUs, item.node, kUplink,
             packData(event, 0)});
    };

    const auto onUplink = [&](size_t s, const WheelItem &item) {
        const uint64_t n = item.node;
        const PopulationArchetype &a =
            classes[slabs.archetype()[n]];
        if (chaosOn && downMap[slabs.gateway()[n]]) {
            // Bottom of the degradation ladder: the node's serving
            // gateway is down and no failover target existed, so the
            // event is classified on the sensor (§16 duty bands keep
            // gating the stream; PR 5 outage semantics keep the
            // streak counting).
            ArchetypeStats &arch =
                archStats[s][slabs.archetype()[n]];
            ++arch.fallbacks;
            ++shardStats[s].blackoutFallbacks;
            if (slabs.outageStreak()[n] < UINT16_MAX)
                ++slabs.outageStreak()[n];
            return;
        }
        const size_t phone =
            static_cast<size_t>(topo.phoneOf(n));
        const uint64_t w = item.at / window;
        if (phoneStamp[phone] != w) {
            phoneStamp[phone] = w;
            phoneBudgetUs[phone] = budgets.phoneCpuUsPerWindow;
        }
        if (phoneBudgetUs[phone] < a.phoneComputeUs) {
            deferOrFallback(s, item, item.at);
            return;
        }
        phoneBudgetUs[phone] -= a.phoneComputeUs;
        if (collect)
            ++obsStats[s].admittedPhone;
        // Bounded stop-and-wait ARQ on the faulty uplink: per-packet
        // loss and state-flip draws are stateless hashes, the
        // Gilbert-Elliott state itself lives in a node slab (only
        // this shard touches it). Every attempt occupies the cell
        // channel; timeouts hold it while the sensor waits for the
        // missing ACK. Fault-free runs take attempts == 1 and the
        // arithmetic below collapses to the legacy expressions.
        uint64_t attempts = 1;
        uint64_t backoffWaitUs = 0;
        bool delivered = true;
        if (link.enabled) {
            const uint64_t event = item.data & kEventMask;
            bool bad = slabs.linkBad()[n] != 0;
            const bool outage = faults.inOutage(Time::micros(
                static_cast<double>(item.at)));
            delivered = false;
            attempts = 0;
            for (uint32_t t = 0; t <= link.maxRetries; ++t) {
                ++attempts;
                const bool lost =
                    outage || faultDraw(n, event, t, 0) <
                                  (bad ? link.lossBad53
                                       : link.lossGood53);
                if (faultDraw(n, event, t, 1) <
                    (bad ? link.badToGood53 : link.goodToBad53))
                    bad = !bad;
                if (!lost) {
                    delivered = true;
                    break;
                }
                if (t < link.maxRetries)
                    backoffWaitUs += link.backoffUs[t];
            }
            slabs.linkBad()[n] = bad ? 1 : 0;
            ShardStats &ss = shardStats[s];
            ++ss.faultOffered;
            ss.faultAttempts += attempts;
            if (delivered) {
                ++ss.faultDelivered;
                ++retryHist[s][attempts - 1];
            } else {
                ++ss.faultAbandoned;
            }
        }
        // Cell-local FCFS channel: one scalar per phone cell.
        const uint64_t airUs = attempts * a.uplinkAirtimeUs;
        const uint64_t start =
            std::max(item.at, cellFreeAt[phone]);
        cellFreeAt[phone] = start + airUs + backoffWaitUs;
        shardStats[s].radioBusyUs += airUs;
        if (!delivered) {
            // ARQ exhausted: refund the reserved phone compute (the
            // payload never arrived) and classify on the sensor —
            // the same degraded placement as the detailed path.
            phoneBudgetUs[phone] += a.phoneComputeUs;
            ArchetypeStats &arch =
                archStats[s][slabs.archetype()[n]];
            ++arch.fallbacks;
            ++arch.arqAbandoned;
            if (slabs.outageStreak()[n] < UINT16_MAX)
                ++slabs.outageStreak()[n];
            return;
        }
        shardStats[s].phoneBusyUs += a.phoneComputeUs;
        ++shardStats[s].transfers;
        queue.shard(s).schedule(
            {start + airUs + backoffWaitUs + a.phoneComputeUs,
             item.node, kGateway,
             packData(item.data & kEventMask,
                      item.data >> kEventBits)});
    };

    const auto onGateway = [&](size_t s, const WheelItem &item) {
        const uint64_t n = item.node;
        const PopulationArchetype &a =
            classes[slabs.archetype()[n]];
        // The serving gateway comes from the slab, not the static
        // topology: a chaos failover re-homes the node to a neighbor
        // gateway (identical to topo.gatewayOf until then).
        const size_t gateway =
            static_cast<size_t>(slabs.gateway()[n]);
        if (chaosOn && downMap[gateway]) {
            // Total blackout (no failover target existed when the
            // gateway died): sensor-local classification.
            ArchetypeStats &arch =
                archStats[s][slabs.archetype()[n]];
            ++arch.fallbacks;
            ++shardStats[s].blackoutFallbacks;
            if (slabs.outageStreak()[n] < UINT16_MAX)
                ++slabs.outageStreak()[n];
            return;
        }
        const uint64_t w = item.at / window;
        if (gatewayStamp[gateway] != w) {
            gatewayStamp[gateway] = w;
            gatewayAirUs[gateway] =
                budgets.gatewayAirtimeUsPerWindow;
            gatewayQuota[gateway] =
                budgets.cloudEventsPerGatewayPerWindow;
        }
        if (gatewayAirUs[gateway] < a.gatewayAirtimeUs) {
            deferOrFallback(s, item, item.at);
            return;
        }
        // Degradation rung 1: with the cloud unreachable the
        // gateway aggregates locally — no ingest quota consumed, no
        // throttling, the event still completes.
        const bool cloudDownNow =
            chaosOn && sched.cloudDown(w);
        if (!cloudDownNow && gatewayQuota[gateway] == 0) {
            ++shardStats[s].cloudThrottled;
            deferOrFallback(s, item, item.at);
            return;
        }
        gatewayAirUs[gateway] -= a.gatewayAirtimeUs;
        if (cloudDownNow)
            ++shardStats[s].gatewayLocal;
        else
            --gatewayQuota[gateway];
        shardStats[s].gatewayBusyUs += a.gatewayAirtimeUs;
        ++shardStats[s].transfers;
        const uint64_t completion = item.at + a.gatewayAirtimeUs;
        const uint64_t event = item.data & kEventMask;
        const uint64_t injectedAt =
            phaseOf(n) + event * a.periodUs;
        const uint64_t latency = completion - injectedAt;
        ArchetypeStats &arch =
            archStats[s][slabs.archetype()[n]];
        ++arch.completed;
        arch.latencySumUs += latency;
        arch.latencyMaxUs = std::max(arch.latencyMaxUs, latency);
        if (collect) {
            ShardObs &obs = obsStats[s];
            ++obs.admittedGateway;
            obs.latencySumUs += latency;
            ++obs.latencyBuckets[StatsRegistry::bucketOf(latency)];
        }
        if (latency > a.periodUs)
            ++arch.misses;
        shardStats[s].spanMaxUs =
            std::max(shardStats[s].spanMaxUs, completion);
        slabs.outageStreak()[n] = 0;
    };

    WorkerPool pool(config.workers);
    uint64_t windows = 0;
    queue.run(
        pool,
        [&](size_t s, const WheelItem &item) {
            ++shardStats[s].items;
            switch (item.kind) {
            case kInject:
                onInject(s, item);
                break;
            case kUplink:
                onUplink(s, item);
                break;
            case kGateway:
                onGateway(s, item);
                break;
            default:
                panic("unknown wheel item kind %u", item.kind);
            }
        },
        [&](uint64_t w, uint64_t end) {
            windows = w + 1;
            if (!chaosOn)
                return;
            // Downtime accounting for the window just drained; the
            // schedule still reflects it (transitions below enter
            // window w + 1).
            ct.gatewayDownWindows += sched.downGateways();
            if (sched.cloudDown(w))
                ++ct.cloudDownWindows;
            if (queue.pending() == 0)
                return; // nothing left to heal; skip transitions
            const uint64_t next = w + 1;
            if (sched.cloudDown(next) != sched.cloudDown(w))
                recordEpisode(end,
                              sched.cloudDown(next) ? "cloud-down"
                                                    : "cloud-up",
                              0, 0);

            // Node churn due at this boundary. The queue's contract
            // for departed nodes: in-flight transport items are
            // DROPPED (they can never complete), the self-inject is
            // REDIRECTED to the rejoin tick in the node's current
            // home shard.
            bool anyLeave = false;
            while (churnCursor < churnAgenda.size() &&
                   churnAgenda[churnCursor].window <= next) {
                const ChurnEvent &e = churnAgenda[churnCursor++];
                if (e.leave) {
                    leavingNow[e.node] = 1;
                    srcShards[static_cast<size_t>(
                                  slabs.gateway()[e.node]) %
                              shards] = 1;
                    leaverList.push_back(e.node);
                    anyLeave = true;
                    ++ct.churnLeaves;
                } else {
                    ++ct.churnJoins;
                }
            }
            if (anyLeave) {
                ct.droppedEvents += queue.dropIf(
                    srcShards,
                    [&](const WheelItem &it) {
                        return leavingNow[it.node] != 0 &&
                               it.kind != kInject;
                    });
                ct.parkedInjects += queue.rekeyIf(
                    srcShards,
                    [&](const WheelItem &it) {
                        return leavingNow[it.node] != 0;
                    },
                    [&](WheelItem &it) {
                        const uint64_t joinTick =
                            uint64_t(slabs.churnJoin()[it.node]) *
                            window;
                        if (it.at < joinTick)
                            it.at = joinTick;
                        return static_cast<size_t>(
                                   slabs.gateway()[it.node]) %
                               shards;
                    });
                for (uint32_t nId : leaverList)
                    leavingNow[nId] = 0;
                leaverList.clear();
                std::fill(srcShards.begin(), srcShards.end(), 0);
            }

            // Gateway transitions entering window w + 1. Restarts
            // first (fail-back), then crashes (failover), then one
            // re-key pass moves every touched node's pending items
            // into its new home shard.
            sched.step(next, restartedGw, crashedGw);
            migratedList.clear();
            const auto rehome = [&](uint32_t nId, uint32_t target) {
                srcShards[static_cast<size_t>(
                              slabs.gateway()[nId]) %
                          shards] = 1; // items sit in the OLD shard
                slabs.gateway()[nId] = target;
                ++ct.migratedNodes;
                if (!migratedNow[nId]) {
                    migratedNow[nId] = 1;
                    migratedList.push_back(nId);
                }
            };
            for (uint32_t g : restartedGw) {
                ++ct.gatewayRestarts;
                size_t moved = 0;
                for (uint32_t nId : displaced) {
                    if (topo.gatewayOf(nId) == g &&
                        slabs.gateway()[nId] != g) {
                        rehome(nId, g);
                        ++ct.failbackNodes;
                        ++moved;
                    }
                }
                recordEpisode(end, "restart", g, moved);
            }
            if (!restartedGw.empty()) {
                displaced.erase(
                    std::remove_if(
                        displaced.begin(), displaced.end(),
                        [&](uint32_t nId) {
                            return slabs.gateway()[nId] ==
                                   topo.gatewayOf(nId);
                        }),
                    displaced.end());
            }
            for (uint32_t g : crashedGw) {
                ++ct.gatewayCrashes;
                const uint64_t target = sched.failoverTarget(g);
                size_t moved = 0;
                if (target < topo.gateways) {
                    ++ct.failovers;
                    const uint32_t t =
                        static_cast<uint32_t>(target);
                    // Displaced guests parked on g move on first
                    // (before natives join the displaced list).
                    for (uint32_t nId : displaced) {
                        if (slabs.gateway()[nId] == g) {
                            rehome(nId, t);
                            ++moved;
                        }
                    }
                    const uint64_t first = topo.firstNodeOf(g);
                    const uint64_t last = topo.nodeEndOf(g);
                    for (uint64_t nId = first; nId < last; ++nId) {
                        if (slabs.gateway()[nId] == g) {
                            rehome(static_cast<uint32_t>(nId), t);
                            displaced.push_back(
                                static_cast<uint32_t>(nId));
                            ++moved;
                        }
                    }
                }
                recordEpisode(end, "crash", g, moved);
            }
            if (!migratedList.empty()) {
                // Budgets re-home lazily: the target gateway's and
                // phones' window stamps reset them on first touch,
                // so the barrier only moves the items. Transport
                // items pay the bounded handover cost (§14-style
                // priced cutover); self-injects move free.
                ct.rekeyedItems += queue.rekeyIf(
                    srcShards,
                    [&](const WheelItem &it) {
                        return migratedNow[it.node] != 0;
                    },
                    [&](WheelItem &it) {
                        if (it.kind != kInject) {
                            it.at += chaos.handoverCostUs;
                            ct.handoverUs += chaos.handoverCostUs;
                        }
                        return static_cast<size_t>(
                                   slabs.gateway()[it.node]) %
                               shards;
                    });
                for (uint32_t nId : migratedList)
                    migratedNow[nId] = 0;
                migratedList.clear();
                std::fill(srcShards.begin(), srcShards.end(), 0);
            }
        });

    // Merge: plain sums and maxima over the per-shard accumulators,
    // in either order — the totals are shard-grouping-independent.
    std::vector<ArchetypeStats> arch(classes.size());
    ShardStats total;
    std::vector<uint64_t> retryHistTotal(
        link.enabled ? link.maxRetries + 1 : 0, 0);
    for (size_t s = 0; s < shards; ++s) {
        for (size_t a = 0; a < classes.size(); ++a) {
            arch[a].completed += archStats[s][a].completed;
            arch[a].misses += archStats[s][a].misses;
            arch[a].latencySumUs += archStats[s][a].latencySumUs;
            arch[a].latencyMaxUs = std::max(
                arch[a].latencyMaxUs, archStats[s][a].latencyMaxUs);
            arch[a].fallbacks += archStats[s][a].fallbacks;
            arch[a].suppressed += archStats[s][a].suppressed;
            arch[a].arqAbandoned += archStats[s][a].arqAbandoned;
        }
        total.deferred += shardStats[s].deferred;
        total.cloudThrottled += shardStats[s].cloudThrottled;
        total.phoneBusyUs += shardStats[s].phoneBusyUs;
        total.gatewayBusyUs += shardStats[s].gatewayBusyUs;
        total.radioBusyUs += shardStats[s].radioBusyUs;
        total.transfers += shardStats[s].transfers;
        total.spanMaxUs =
            std::max(total.spanMaxUs, shardStats[s].spanMaxUs);
        total.items += shardStats[s].items;
        total.chaosRetries += shardStats[s].chaosRetries;
        total.gatewayLocal += shardStats[s].gatewayLocal;
        total.blackoutFallbacks += shardStats[s].blackoutFallbacks;
        total.replayed += shardStats[s].replayed;
        total.faultOffered += shardStats[s].faultOffered;
        total.faultDelivered += shardStats[s].faultDelivered;
        total.faultAbandoned += shardStats[s].faultAbandoned;
        total.faultAttempts += shardStats[s].faultAttempts;
        for (size_t r = 0; r < retryHistTotal.size(); ++r)
            retryHistTotal[r] += retryHist[s][r];
    }

    // Report assembly is the only place doubles appear; every input
    // is an integer that is already shard/worker-independent.
    PopulationFleetResult result;
    FleetReport &report = result.report;
    report.policy = "tiered-fcfs";
    report.nodeCount = static_cast<size_t>(config.nodes);
    const double span_us =
        static_cast<double>(total.spanMaxUs);
    report.spanMs = span_us / 1000.0;
    report.radioBusyMs =
        static_cast<double>(total.radioBusyUs) / 1000.0;
    // Occupancy is per cell channel (phones) — the population path
    // has no single shared radio to saturate.
    report.radioOccupancy =
        span_us > 0.0 ? static_cast<double>(total.radioBusyUs) /
                            (span_us *
                             static_cast<double>(topo.phones))
                      : 0.0;
    report.transfers = static_cast<size_t>(total.transfers);
    report.aggregatorBusyMs =
        static_cast<double>(total.phoneBusyUs) / 1000.0;
    report.aggregatorUtilization =
        span_us > 0.0 ? static_cast<double>(total.phoneBusyUs) /
                            (span_us *
                             static_cast<double>(topo.phones))
                      : 0.0;
    report.aggregatorCpuShare =
        config.tiers.phone.maxCpuUtilization;
    report.aggregatorPowerUw = 0.0;
    report.aggregatorLifetimeHours = 0.0;
    for (size_t a = 0; a < classes.size(); ++a) {
        const PopulationArchetype &cls = classes[a];
        FleetNodeReportRow row;
        row.symbol = cls.symbol;
        row.process = cls.process;
        row.admission = "tiered";
        row.sensorCells = cls.sensorCells;
        row.totalCells = cls.totalCells;
        row.accuracy = cls.accuracy;
        row.eventsPerSecond =
            1e6 / static_cast<double>(cls.periodUs);
        // Lifetime: battery over steady-state event energy draw.
        const double joules_per_sec =
            static_cast<double>(cls.eventEnergyNj) * 1e-9 *
            row.eventsPerSecond;
        row.sensorLifetimeHours =
            joules_per_sec > 0.0
                ? static_cast<double>(cls.batteryNj) * 1e-9 /
                      joules_per_sec / 3600.0
                : 0.0;
        row.events = static_cast<size_t>(arch[a].completed);
        row.deadlineMisses = static_cast<size_t>(arch[a].misses);
        row.meanLatencyMs =
            arch[a].completed > 0
                ? static_cast<double>(arch[a].latencySumUs) /
                      static_cast<double>(arch[a].completed) /
                      1000.0
                : 0.0;
        row.worstLatencyMs =
            static_cast<double>(arch[a].latencyMaxUs) / 1000.0;
        row.aggregatorPowerUw = 0.0;
        row.degradedEvents =
            static_cast<size_t>(arch[a].arqAbandoned);
        report.totalEvents += row.events;
        report.totalDeadlineMisses += row.deadlineMisses;
        report.rows.push_back(std::move(row));
    }
    TiersReport &tiers = report.tiers;
    tiers.enabled = true;
    tiers.sensorsPerPhone = topo.sensorsPerPhone;
    tiers.phonesPerGateway = topo.phonesPerGateway;
    tiers.phones = static_cast<size_t>(topo.phones);
    tiers.gateways = static_cast<size_t>(topo.gateways);
    tiers.windows = static_cast<size_t>(windows);
    tiers.deferredUplinks = static_cast<size_t>(total.deferred);
    tiers.cloudThrottled =
        static_cast<size_t>(total.cloudThrottled);
    tiers.phoneBusyMs =
        static_cast<double>(total.phoneBusyUs) / 1000.0;
    tiers.gatewayBusyMs =
        static_cast<double>(total.gatewayBusyUs) / 1000.0;
    for (size_t a = 0; a < classes.size(); ++a) {
        tiers.localFallbacks +=
            static_cast<size_t>(arch[a].fallbacks);
        tiers.dutySuppressed +=
            static_cast<size_t>(arch[a].suppressed);
    }

    if (chaosOn) {
        ChaosReport &cr = report.chaos;
        cr.enabled = true;
        cr.gatewayCrashes =
            static_cast<size_t>(ct.gatewayCrashes);
        cr.gatewayRestarts =
            static_cast<size_t>(ct.gatewayRestarts);
        cr.failovers = static_cast<size_t>(ct.failovers);
        cr.migratedNodes = static_cast<size_t>(ct.migratedNodes);
        cr.failbackNodes = static_cast<size_t>(ct.failbackNodes);
        cr.rekeyedItems = static_cast<size_t>(ct.rekeyedItems);
        cr.retries = static_cast<size_t>(total.chaosRetries);
        cr.droppedEvents = static_cast<size_t>(ct.droppedEvents);
        cr.parkedInjects = static_cast<size_t>(ct.parkedInjects);
        cr.replayedEvents = static_cast<size_t>(total.replayed);
        cr.gatewayLocalEvents =
            static_cast<size_t>(total.gatewayLocal);
        cr.blackoutFallbacks =
            static_cast<size_t>(total.blackoutFallbacks);
        cr.churnLeaves = static_cast<size_t>(ct.churnLeaves);
        cr.churnJoins = static_cast<size_t>(ct.churnJoins);
        cr.gatewayDownWindows =
            static_cast<size_t>(ct.gatewayDownWindows);
        cr.cloudDownWindows =
            static_cast<size_t>(ct.cloudDownWindows);
        cr.handoverMs =
            static_cast<double>(ct.handoverUs) / 1000.0;
        uint16_t worstStreak = 0;
        for (uint64_t n = 0; n < config.nodes; ++n)
            worstStreak =
                std::max(worstStreak, slabs.outageStreak()[n]);
        cr.maxOutageStreak = worstStreak;
        cr.episodes = std::move(chaosEpisodes);
        cr.droppedEpisodes =
            static_cast<size_t>(ct.droppedEpisodes);
    }

    if (link.enabled) {
        RobustnessReport &rob = report.robustness;
        rob.enabled = true;
        rob.packetsOffered =
            static_cast<size_t>(total.faultOffered);
        rob.packetsDelivered =
            static_cast<size_t>(total.faultDelivered);
        rob.packetsAbandoned =
            static_cast<size_t>(total.faultAbandoned);
        rob.attempts = static_cast<size_t>(total.faultAttempts);
        // Same trailing-trim convention as the detailed path: the
        // histogram ends at the deepest retry actually used.
        size_t depth = retryHistTotal.size();
        while (depth > 0 && retryHistTotal[depth - 1] == 0)
            --depth;
        rob.retryHistogram.assign(retryHistTotal.begin(),
                                  retryHistTotal.begin() +
                                      static_cast<ptrdiff_t>(depth));
        rob.degradedEvents =
            static_cast<size_t>(total.faultAbandoned);
    }

    if (collect) {
        StatsRegistry &reg = StatsRegistry::instance();
        ShardObs folded;
        for (const ShardObs &obs : obsStats) {
            folded.admittedPhone += obs.admittedPhone;
            folded.admittedGateway += obs.admittedGateway;
            folded.deferredPhone += obs.deferredPhone;
            folded.deferredGateway += obs.deferredGateway;
            folded.latencySumUs += obs.latencySumUs;
            for (uint32_t b = 0;
                 b < StatsRegistry::kHistogramBuckets; ++b)
                folded.latencyBuckets[b] += obs.latencyBuckets[b];
        }
        reg.add(sids.admittedPhone, folded.admittedPhone);
        reg.add(sids.admittedGateway, folded.admittedGateway);
        reg.add(sids.deferredPhone, folded.deferredPhone);
        reg.add(sids.deferredGateway, folded.deferredGateway);
        reg.mergeHistogram(sids.latencyUs, folded.latencySumUs,
                           folded.latencyBuckets,
                           StatsRegistry::kHistogramBuckets);
        // Run-level totals, published from the merged accumulators
        // (already shard-grouping-independent by construction).
        reg.add(sids.completed, report.totalEvents);
        reg.add(sids.deadlineMisses, report.totalDeadlineMisses);
        reg.add(sids.localFallbacks, tiers.localFallbacks);
        reg.add(sids.dutySuppressed, tiers.dutySuppressed);
        reg.add(sids.cloudThrottled, total.cloudThrottled);
        reg.add(sids.wheelItems, total.items);
        reg.add(sids.transfers, total.transfers);
        if (chaosOn) {
            reg.add(sids.chaosFailovers, ct.failovers);
            reg.add(sids.chaosMigrations, ct.migratedNodes);
            reg.add(sids.chaosRetries, total.chaosRetries);
        }
    }

    result.simulatedEvents = total.items;
    result.effectiveShards = shards;
    result.bytesPerNode = NodeSlabs::bytesPerNode();
    return result;
}

} // namespace xpro
