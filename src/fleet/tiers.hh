/**
 * @file
 * Hierarchical aggregation tiers for population-scale fleets:
 * sensor -> phone -> edge gateway -> cloud (DESIGN.md §16).
 *
 * The detailed fleet simulation arbitrates one shared radio across
 * every node — faithful for a body-area network, quadratic and
 * physically wrong for a million users. At population scale each
 * phone serves only its own sensors, each gateway serves only its
 * phone cell, and the cloud ingests from every gateway; contention
 * is therefore local to a cell, and the tier topology is what lets
 * the sharded event queue cut the fleet along gateway boundaries
 * with no cross-shard coupling inside a time window.
 *
 * Per-tier capacity reuses the admission vocabulary of
 * fleet/admission: the phone tier is budgeted with an
 * AdmissionConfig (CPU-utilization cap, per-window compute budget),
 * the gateway tier with an airtime share, and the cloud tier with
 * an ingest quota provisioned per gateway so the result cannot
 * depend on how gateways are grouped into shards.
 */

#ifndef XPRO_FLEET_TIERS_HH
#define XPRO_FLEET_TIERS_HH

#include <cstddef>
#include <cstdint>

#include "fleet/admission.hh"

namespace xpro
{

/** Fan-out and per-tier budgets of the aggregation hierarchy. */
struct TierConfig
{
    /** Sensors multiplexed onto one phone (one phone cell). */
    uint32_t sensorsPerPhone = 32;
    /** Phone cells uplinked through one edge gateway. */
    uint32_t phonesPerGateway = 64;
    /**
     * Phone-tier admission: maxCpuUtilization caps the per-window
     * compute budget each phone spends on fleet analytics (the rest
     * of the phone belongs to its owner, exactly as in
     * AdmissionConfig's single-aggregator reading).
     */
    AdmissionConfig phone;
    /** Fraction of a gateway's airtime the fleet may occupy. */
    double gatewayAirtimeShare = 0.35;
    /**
     * Cloud ingest quota in events/sec across the WHOLE fleet;
     * internally provisioned per gateway (quota / gateways) so the
     * outcome is independent of the gateway-to-shard grouping.
     */
    uint64_t cloudEventsPerSec = 200000;
    /**
     * How many windows an uplink may be deferred for lack of phone
     * or gateway budget before the event falls back to local
     * (in-sensor) handling.
     */
    uint32_t maxDefers = 2;
};

/** Static sensor -> phone -> gateway assignment for a fleet. */
struct TierTopology
{
    uint64_t nodes = 0;
    uint32_t sensorsPerPhone = 1;
    uint32_t phonesPerGateway = 1;
    uint64_t phones = 0;
    uint64_t gateways = 0;

    /** Build the dense assignment for @p node_count nodes. */
    static TierTopology build(uint64_t node_count,
                              const TierConfig &config);

    /** Phone cell serving @p node. */
    uint64_t
    phoneOf(uint64_t node) const
    {
        return node / sensorsPerPhone;
    }

    /** Gateway serving @p node's phone cell. */
    uint64_t
    gatewayOf(uint64_t node) const
    {
        return phoneOf(node) / phonesPerGateway;
    }

    /** First phone cell homed on @p gateway. */
    uint64_t
    firstPhoneOf(uint64_t gateway) const
    {
        return gateway * phonesPerGateway;
    }

    /** First node natively homed on @p gateway. */
    uint64_t
    firstNodeOf(uint64_t gateway) const
    {
        return firstPhoneOf(gateway) * sensorsPerPhone;
    }

    /** One past the last node natively homed on @p gateway (the
     *  dense assignment's half-open native range, used by the chaos
     *  layer to enumerate a dead gateway's nodes). */
    uint64_t
    nodeEndOf(uint64_t gateway) const
    {
        const uint64_t end = firstNodeOf(gateway + 1);
        return end < nodes ? end : nodes;
    }
};

/**
 * Per-window integer budgets derived from a TierConfig: everything
 * the population simulation spends is pre-converted to microseconds
 * (or event counts) per synchronization window, so the inner loop
 * never touches floating point and the totals merge identically for
 * any shard grouping.
 */
struct TierBudgets
{
    /** Window length in microsecond ticks. */
    uint64_t windowUs = 0;
    /** Phone-tier analytics compute budget per phone per window. */
    uint64_t phoneCpuUsPerWindow = 0;
    /** Gateway airtime budget per gateway per window. */
    uint64_t gatewayAirtimeUsPerWindow = 0;
    /** Cloud ingest quota per gateway per window (events). */
    uint64_t cloudEventsPerGatewayPerWindow = 0;
    /** Defer cap copied from the config. */
    uint32_t maxDefers = 0;

    static TierBudgets build(const TierConfig &config,
                             const TierTopology &topology,
                             uint64_t window_us);
};

} // namespace xpro

#endif // XPRO_FLEET_TIERS_HH
