/**
 * @file
 * Aggregator admission control for sensor-node fleets.
 *
 * A single aggregator (one A8-class core, one battery) backs every
 * node of a body-sensor network, so the per-node XPro cuts cannot
 * each assume a dedicated aggregator: their combined software load
 * must fit a CPU-utilization cap and a power budget reserved for
 * analytics. Nodes are admitted in fleet order. A node whose
 * offloaded load does not fit is re-partitioned with a growing
 * aggregator-energy penalty in the generator's objective
 * (GeneratorOptions::aggregatorEnergyWeight), which pulls cells back
 * into the sensor; if no penalized cut fits either, the node falls
 * back to the all-in-sensor design, whose only aggregator cost is
 * receiving the classification result.
 */

#ifndef XPRO_FLEET_ADMISSION_HH
#define XPRO_FLEET_ADMISSION_HH

#include <string>
#include <vector>

#include "core/partitioner.hh"
#include "core/placement.hh"
#include "core/topology.hh"
#include "wireless/link.hh"

namespace xpro
{

/** Aggregator capacity reserved for the fleet's analytics. */
struct AdmissionConfig
{
    /**
     * Fraction of the aggregator CPU the fleet may keep busy (the
     * phone still runs its own workload; the paper's Fig. 13 view).
     */
    double maxCpuUtilization = 0.35;
    /** Power budget for the fleet's aggregator-side analytics. */
    Power powerBudget = Power::millis(2.0);
    /** Penalty weight of the first re-partitioning round. */
    double initialPenalty = 1.0;
    /** Penalty growth factor between rounds. */
    double penaltyGrowth = 4.0;
    /** Re-partitioning rounds before forcing in-sensor. */
    size_t maxRounds = 4;
};

/** How a node's design fared against the aggregator budget. */
enum class AdmissionOutcome
{
    /** The node's original cut fit as-is. */
    Offloaded,
    /** Re-partitioned under an aggregator-energy penalty. */
    Repartitioned,
    /** Fell back to the all-in-sensor design. */
    InSensor,
};

/** Short tag: "offload", "repartition" or "in-sensor". */
const std::string &admissionOutcomeName(AdmissionOutcome outcome);

/** One node's demand on the shared aggregator. */
struct AdmissionCandidate
{
    const EngineTopology *topology = nullptr;
    /** The node's standalone generator cut. */
    const Placement *placement = nullptr;
    /** The node's event (segment) rate. */
    double eventsPerSecond = 4.0;
};

/** Admission decision for one node. */
struct NodeAdmission
{
    AdmissionOutcome outcome = AdmissionOutcome::Offloaded;
    /** The placement actually admitted. */
    Placement placement;
    /** Aggregator CPU fraction the node occupies. */
    double cpuShare = 0.0;
    /** Aggregator analytics power the node draws. */
    Power power;
    /** Final penalty weight (0 when the original cut fit). */
    double penaltyWeight = 0.0;
};

/** Fleet-wide admission outcome. */
struct AdmissionResult
{
    std::vector<NodeAdmission> nodes;
    /** Total admitted aggregator CPU utilization. */
    double cpuUtilization = 0.0;
    /** Total admitted aggregator analytics power. */
    Power power;
};

/**
 * Fraction of the aggregator CPU a placement keeps busy: software
 * execution time of the aggregator-placed cells per event times the
 * event rate.
 */
double aggregatorCpuShare(const EngineTopology &topology,
                          const Placement &placement,
                          double events_per_second);

/** Aggregator analytics power of a placement (compute + radio). */
Power aggregatorAnalyticsPower(const EngineTopology &topology,
                               const Placement &placement,
                               const WirelessLink &link,
                               double events_per_second);

/**
 * Admit @p candidates against the shared aggregator in order.
 * Deterministic: depends only on the candidates, their order and the
 * configuration.
 */
AdmissionResult admitFleet(
    const std::vector<AdmissionCandidate> &candidates,
    const WirelessLink &link, const AdmissionConfig &config = {});

} // namespace xpro

#endif // XPRO_FLEET_ADMISSION_HH
