/**
 * @file
 * Fleet simulation: many heterogeneous sensor nodes on one shared
 * aggregator (paper Section 5.7, "extension to multiple sensor
 * nodes", taken past the paper's separate-channel assumption).
 *
 * A fleet run has three phases:
 *
 *  1. Design. Every node gets its own XPro cut (dataset, training,
 *     generator), computed concurrently on a WorkerPool — nodes are
 *     independent until they share hardware. Deterministic per node,
 *     so the fleet outcome is identical for any worker count.
 *  2. Admission. The per-node cuts are admitted against the shared
 *     aggregator's CPU and power budget (fleet/admission); nodes
 *     that do not fit are re-partitioned toward the sensor.
 *  3. Event simulation. All nodes stream segments through one
 *     event queue: sensor-side cells run in parallel (every node
 *     owns its silicon), but inter-end payloads serialize over one
 *     half-duplex radio channel under a pluggable arbitration
 *     policy (fleet/radio_sched), and aggregator-side cells
 *     serialize on the single aggregator CPU. Per-node deadline
 *     misses, radio occupancy and aggregator utilization fall out.
 *  4. Serving (optional, FleetConfig::servingEvents > 0). The
 *     trained pipelines classify a deterministic round-robin
 *     stream of segments through the allocation-free SIMD hot path
 *     (serve/), batched across users; per-node prediction counts
 *     land in the report's serving section.
 *
 * Results surface as a FleetReport (core/report).
 */

#ifndef XPRO_FLEET_FLEET_HH
#define XPRO_FLEET_FLEET_HH

#include <cstdint>
#include <vector>

#include "common/arena.hh"
#include "core/evaluator.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "data/testcases.hh"
#include "fleet/admission.hh"
#include "fleet/chaos.hh"
#include "fleet/radio_sched.hh"
#include "fleet/tiers.hh"
#include "common/worker_pool.hh"
#include "wireless/fault.hh"

namespace xpro
{

/** One sensor node's static description in a fleet. */
struct FleetNodeSpec
{
    TestCase testCase = TestCase::C1;
    ProcessNode process = ProcessNode::Tsmc90;
    /** Dataset + training seed (distinct seeds, distinct bodies). */
    uint64_t seed = 2017;
    /** Random-subspace candidates (scaled down for fleet runs). */
    size_t subspaceCandidates = 40;
    /** Training segment cap (0 = everything). */
    size_t maxTrainingSegments = 250;
};

/** Shared-radio arbitration policy selector. */
enum class RadioPolicy
{
    Fcfs,
    Tdma,
};

/**
 * Scripted dropout of one fleet node: every packet the node offers
 * (or is offered) during [start, end) is lost, deterministic and
 * independent of the stochastic channel. Models one body walking
 * out of range while the rest of the fleet keeps operating; the
 * bounded ARQ keeps each of the dead node's packets on the channel
 * for a bounded time, so FCFS/TDMA arbitration never stalls on it.
 */
struct NodeOutage
{
    /** Index into FleetConfig::nodes. */
    size_t node = 0;
    Time start;
    Time end;
};

/** Full configuration of one fleet run. */
struct FleetConfig
{
    std::vector<FleetNodeSpec> nodes;
    /** Transceiver model shared by all nodes (one channel). */
    WirelessModel wireless = WirelessModel::Model2;
    /** Channel bit error rate (0 = ideal). */
    double bitErrorRate = 0.0;
    RadioPolicy policy = RadioPolicy::Fcfs;
    /**
     * TDMA slot length; zero derives it from the largest payload
     * any node can put on the air (every transfer fits one slot).
     */
    Time tdmaSlot;
    /** Design-phase worker threads. */
    size_t workers = 1;
    /**
     * Worker threads inside each node's generator, evaluating the
     * Lagrangian sweep's candidate placements (GeneratorOptions::
     * sweepWorkers). Composes with @ref workers: the design phase
     * can run up to workers * sweepWorkers threads. Any value
     * produces a byte-identical FleetReport (tested).
     */
    size_t sweepWorkers = 1;
    /** Simulated events per node. */
    size_t eventsPerNode = 6;
    /**
     * Multiplier on every node's event rate in the event
     * simulation only (stress the shared channel and CPU without
     * redesigning the cuts).
     */
    double eventRateScale = 1.0;
    /**
     * Steady-state serving events classified after the event
     * simulation (phase 4): segments are drawn round-robin across
     * the nodes' regenerated datasets and pushed through each
     * node's trained pipeline on the allocation-free SIMD hot path
     * (serve/). 0 disables the phase; the report is then
     * byte-identical to a build without it.
     */
    size_t servingEvents = 0;
    /**
     * Cross-user serving batch size: one inference batch spans up
     * to this many concurrent events from any mix of nodes. 0 means
     * one batch over everything. Predictions and the serialized
     * report are bit-identical at any value (tested).
     */
    size_t batchEvents = 0;
    /** Serving worker threads (0 = one per hardware thread,
     *  1 = inline). Bit-identical at any value (tested). */
    size_t servingWorkers = 1;
    AdmissionConfig admission;
    /**
     * Fault injection on the shared channel (event simulation
     * only; the design phase keeps the expectation-level channel).
     * Disabled by default: the report is then byte-identical to a
     * fault-free build.
     */
    FaultProfile faults;
    /**
     * Scripted per-node dropouts. Honored even when @ref faults is
     * disabled (the ARQ/fallback machinery is enabled with an
     * otherwise loss-free channel).
     */
    std::vector<NodeOutage> nodeOutages;
};

/**
 * N heterogeneous node specs: test cases and process nodes cycle,
 * seeds are distinct (distinct synthetic bodies).
 */
std::vector<FleetNodeSpec> heterogeneousFleet(size_t count,
                                              uint64_t seed = 2017);

/** One member of the event-level fleet simulation. */
struct FleetMember
{
    EngineTopology topology;
    Placement placement;
    /** Event injection rate. */
    double eventsPerSecond = 4.0;
};

/** Event-level outcome for one member. */
struct MemberSimResult
{
    size_t events = 0;
    /** Events finishing after the next segment was acquired. */
    size_t deadlineMisses = 0;
    Time meanLatency;
    Time worstLatency;
    /** Completion time of the member's first event. */
    Time firstCompletion;
    /** Events classified via the node's local fallback (only
     *  nonzero in fault-injected runs). */
    size_t degradedEvents = 0;
};

/** Event-level outcome of a fleet simulation. */
struct FleetSimResult
{
    std::vector<MemberSimResult> members;
    /** Simulated makespan (last completion). */
    Time span;
    /** Shared-channel busy time. */
    Time radioBusy;
    size_t transfers = 0;
    /** Aggregator CPU busy time. */
    Time aggregatorBusy;
    /** Fleet-wide fault-injection outcome; disabled for fault-free
     *  runs. */
    RobustnessReport robustness;
};

/**
 * Simulate @p events_per_node events of every member, all sharing
 * one half-duplex radio (arbitrated by @p arbiter) and one
 * aggregator CPU. Deterministic for a fixed member order.
 */
FleetSimResult simulateFleet(const std::vector<FleetMember> &members,
                             const WirelessLink &link,
                             const RadioArbiter &arbiter,
                             size_t events_per_node);

/**
 * Fault-injected fleet simulation: one Gilbert-Elliott loss chain
 * on the shared channel (draws consumed in deterministic event
 * order), bounded ARQ per transfer, a per-node outage detector with
 * local fallback, plus scripted per-node dropouts. A disabled
 * profile with no outages is exactly the overload above.
 */
FleetSimResult simulateFleet(const std::vector<FleetMember> &members,
                             const WirelessLink &link,
                             const RadioArbiter &arbiter,
                             size_t events_per_node,
                             const FaultProfile &faults,
                             const std::vector<NodeOutage>
                                 &node_outages = {});

/** Everything known about one node after a fleet run. */
struct FleetNodeResult
{
    FleetNodeSpec spec;
    XProDesign design;
    NodeAdmission admission;
    /** Evaluation of the admitted placement. */
    EngineEvaluation evaluation;
};

/** Outcome of a full fleet run. */
struct FleetResult
{
    std::vector<FleetNodeResult> nodes;
    AdmissionResult admission;
    FleetSimResult sim;
    FleetReport report;
    /**
     * Design-phase pool accounting (host timings; deliberately not
     * part of the report): total task CPU time, the busiest
     * worker's CPU time, and the wall-clock duration.
     */
    Time designWork;
    Time designMakespan;
    Time designWall;
};

/**
 * Design every node of @p specs concurrently on @p pool, with
 * @p sweep_workers threads inside each node's generator sweep.
 * Result i belongs to spec i regardless of either worker count.
 */
std::vector<XProDesign>
designFleet(const std::vector<FleetNodeSpec> &specs,
            WirelessModel wireless, double bit_error_rate,
            WorkerPool &pool, size_t sweep_workers = 1);

/** Full fleet flow: parallel design, admission, event simulation. */
FleetResult runFleet(const FleetConfig &config);

// --- Population-scale fleet (DESIGN.md §16) --------------------------
//
// The detailed simulation above models every dataflow cell of every
// node — right for tens of nodes, hopeless for a million. The
// population path keeps only what matters at scale: each node is a
// row in a struct-of-arrays slab (NodeSlabs), events are 24-byte
// records on a sharded hierarchical time wheel (sim/event_queue),
// and contention is local to the tier hierarchy (fleet/tiers).

/**
 * One class of nodes in a population-scale fleet: the per-event
 * integer costs of a designed XPro cut, shared by every node of the
 * class. Costs are integers (microseconds, nanojoules) so the whole
 * simulation stays in integer arithmetic and merges identically for
 * any shard grouping; doubles appear only in the report.
 */
struct PopulationArchetype
{
    /** Report row labels. */
    std::string symbol;
    std::string process;
    /** In-sensor compute per event. */
    uint64_t sensorComputeUs = 2000;
    /** Phone-tier (aggregator) compute per event. */
    uint64_t phoneComputeUs = 200;
    /** Sensor -> phone payload airtime (cell-local channel). */
    uint64_t uplinkAirtimeUs = 400;
    /** Phone -> gateway airtime. */
    uint64_t gatewayAirtimeUs = 100;
    /** Battery drawn per sensed event (compute + radio). */
    uint64_t eventEnergyNj = 60000;
    /** Initial sensor battery. */
    uint64_t batteryNj = 2000000000ULL;
    /** Event (segment) period; the rate is 1e6 / periodUs. */
    uint64_t periodUs = 1000000;
    /** Cells in the sensor / total, and held-out accuracy — report
     *  row context copied from the class's design. */
    size_t sensorCells = 0;
    size_t totalCells = 0;
    double accuracy = 0.0;
};

/**
 * Synthetic archetype mix with the cost spread of the paper's six
 * test cases (heavy in-sensor ECG cuts through light accelerometer
 * offloads). Nodes cycle through the classes, so any fleet size
 * exercises every class.
 */
std::vector<PopulationArchetype> syntheticArchetypes();

/** Configuration of one population-scale run. */
struct PopulationFleetConfig
{
    uint64_t nodes = 10000;
    /** Event-queue shards; clamped to the gateway count (a shard
     *  owns whole gateways). Any value yields byte-identical
     *  reports (tested). */
    size_t shards = 1;
    /** Worker threads draining the shards. Any value yields
     *  byte-identical reports (tested). */
    size_t workers = 1;
    /** Sensed events per node. */
    uint64_t eventsPerNode = 2;
    /** Phase-stagger seed (nodes must not inject in lockstep). */
    uint64_t seed = 2017;
    /** Conservative-sync window; also the budget-reset period of
     *  the tier admission. */
    uint64_t windowUs = 100000;
    TierConfig tiers;
    /** Node classes; empty selects syntheticArchetypes(). */
    std::vector<PopulationArchetype> archetypes;
    /** Deterministic chaos schedule (fleet/chaos); disabled by
     *  default, in which case the run takes the exact legacy path
     *  and the report keeps its pre-chaos bytes. */
    ChaosConfig chaos;
    /** Sensor-uplink channel faults: the same shared FaultProfile
     *  the detailed path consumes, applied per-attempt at population
     *  scale via stateless hash draws (no sequential RNG, so the
     *  report stays shard/worker-invariant). Disabled by default. */
    FaultProfile faults;
    /**
     * Record population.* stats into the global StatsRegistry
     * (per-shard slabs on the hot path, absorbed once at the end).
     * bench_stats_overhead flips this off for its in-binary
     * baseline; it has no effect when stats are compiled out.
     */
    bool collectStats = true;
};

/**
 * Struct-of-arrays per-node state: nine parallel slabs in one arena,
 * ~30 bytes a node, so a million nodes fit in a few tens of
 * megabytes. Indexed by node id; all slabs are plain old data (the
 * arena never runs destructors).
 */
class NodeSlabs
{
  public:
    NodeSlabs(Arena &arena, uint64_t count, size_t archetypes);

    uint64_t count() const { return _count; }

    /** Archetype (node class) index. */
    uint16_t *archetype() { return _archetype; }
    /** Duty-cycle band currently in force (0 = full duty). */
    uint8_t *dutyLevel() { return _dutyLevel; }
    /** Next event index to inject (the pending-event cursor). */
    uint32_t *eventCursor() { return _eventCursor; }
    /** Remaining battery in nanojoules. */
    uint64_t *battery() { return _battery; }
    /** Consecutive events lost to backpressure (outage counter). */
    uint16_t *outageStreak() { return _outageStreak; }
    /** Serving gateway: the topology's native gateway until a chaos
     *  failover re-homes the node. Only the barrier writes it. */
    uint32_t *gateway() { return _gateway; }
    /** Churn leave/rejoin windows (~0 = the node never churns). */
    uint32_t *churnLeave() { return _churnLeave; }
    uint32_t *churnJoin() { return _churnJoin; }
    /** Gilbert-Elliott channel state, nonzero = bad (fault runs). */
    uint8_t *linkBad() { return _linkBad; }

    /** Slab bytes per node (the "tens of bytes" contract). */
    static constexpr size_t
    bytesPerNode()
    {
        return sizeof(uint16_t) + sizeof(uint8_t) +
               sizeof(uint32_t) + sizeof(uint64_t) +
               sizeof(uint16_t) + sizeof(uint32_t) +
               sizeof(uint32_t) + sizeof(uint32_t) +
               sizeof(uint8_t);
    }

  private:
    uint64_t _count = 0;
    uint16_t *_archetype = nullptr;
    uint8_t *_dutyLevel = nullptr;
    uint32_t *_eventCursor = nullptr;
    uint64_t *_battery = nullptr;
    uint16_t *_outageStreak = nullptr;
    uint32_t *_gateway = nullptr;
    uint32_t *_churnLeave = nullptr;
    uint32_t *_churnJoin = nullptr;
    uint8_t *_linkBad = nullptr;
};

/** Outcome of a population-scale run. */
struct PopulationFleetResult
{
    /** Same report type as the detailed path; rows are per
     *  archetype, the tiers section is enabled. Byte-identical at
     *  any shard/worker count. */
    FleetReport report;
    /** Wheel items processed (inject + uplink + gateway hops). */
    uint64_t simulatedEvents = 0;
    /** Shards actually used (min of requested, gateways, nodes). */
    size_t effectiveShards = 0;
    /** Node-state slab bytes per node. */
    size_t bytesPerNode = 0;
};

/**
 * Simulate @p config.nodes nodes through the sensor -> phone ->
 * gateway -> cloud hierarchy on a sharded event queue. The report
 * is a pure function of the configuration: shards and workers only
 * change wall-clock time, never a byte of the serialization (the
 * PR 2/3/6 determinism discipline; tested and TSan-checked).
 */
PopulationFleetResult
runPopulationFleet(const PopulationFleetConfig &config);

} // namespace xpro

#endif // XPRO_FLEET_FLEET_HH
