/**
 * @file
 * Fleet simulation: many heterogeneous sensor nodes on one shared
 * aggregator (paper Section 5.7, "extension to multiple sensor
 * nodes", taken past the paper's separate-channel assumption).
 *
 * A fleet run has three phases:
 *
 *  1. Design. Every node gets its own XPro cut (dataset, training,
 *     generator), computed concurrently on a WorkerPool — nodes are
 *     independent until they share hardware. Deterministic per node,
 *     so the fleet outcome is identical for any worker count.
 *  2. Admission. The per-node cuts are admitted against the shared
 *     aggregator's CPU and power budget (fleet/admission); nodes
 *     that do not fit are re-partitioned toward the sensor.
 *  3. Event simulation. All nodes stream segments through one
 *     event queue: sensor-side cells run in parallel (every node
 *     owns its silicon), but inter-end payloads serialize over one
 *     half-duplex radio channel under a pluggable arbitration
 *     policy (fleet/radio_sched), and aggregator-side cells
 *     serialize on the single aggregator CPU. Per-node deadline
 *     misses, radio occupancy and aggregator utilization fall out.
 *  4. Serving (optional, FleetConfig::servingEvents > 0). The
 *     trained pipelines classify a deterministic round-robin
 *     stream of segments through the allocation-free SIMD hot path
 *     (serve/), batched across users; per-node prediction counts
 *     land in the report's serving section.
 *
 * Results surface as a FleetReport (core/report).
 */

#ifndef XPRO_FLEET_FLEET_HH
#define XPRO_FLEET_FLEET_HH

#include <cstdint>
#include <vector>

#include "core/evaluator.hh"
#include "core/pipeline.hh"
#include "core/report.hh"
#include "data/testcases.hh"
#include "fleet/admission.hh"
#include "fleet/radio_sched.hh"
#include "common/worker_pool.hh"
#include "wireless/fault.hh"

namespace xpro
{

/** One sensor node's static description in a fleet. */
struct FleetNodeSpec
{
    TestCase testCase = TestCase::C1;
    ProcessNode process = ProcessNode::Tsmc90;
    /** Dataset + training seed (distinct seeds, distinct bodies). */
    uint64_t seed = 2017;
    /** Random-subspace candidates (scaled down for fleet runs). */
    size_t subspaceCandidates = 40;
    /** Training segment cap (0 = everything). */
    size_t maxTrainingSegments = 250;
};

/** Shared-radio arbitration policy selector. */
enum class RadioPolicy
{
    Fcfs,
    Tdma,
};

/**
 * Scripted dropout of one fleet node: every packet the node offers
 * (or is offered) during [start, end) is lost, deterministic and
 * independent of the stochastic channel. Models one body walking
 * out of range while the rest of the fleet keeps operating; the
 * bounded ARQ keeps each of the dead node's packets on the channel
 * for a bounded time, so FCFS/TDMA arbitration never stalls on it.
 */
struct NodeOutage
{
    /** Index into FleetConfig::nodes. */
    size_t node = 0;
    Time start;
    Time end;
};

/** Full configuration of one fleet run. */
struct FleetConfig
{
    std::vector<FleetNodeSpec> nodes;
    /** Transceiver model shared by all nodes (one channel). */
    WirelessModel wireless = WirelessModel::Model2;
    /** Channel bit error rate (0 = ideal). */
    double bitErrorRate = 0.0;
    RadioPolicy policy = RadioPolicy::Fcfs;
    /**
     * TDMA slot length; zero derives it from the largest payload
     * any node can put on the air (every transfer fits one slot).
     */
    Time tdmaSlot;
    /** Design-phase worker threads. */
    size_t workers = 1;
    /**
     * Worker threads inside each node's generator, evaluating the
     * Lagrangian sweep's candidate placements (GeneratorOptions::
     * sweepWorkers). Composes with @ref workers: the design phase
     * can run up to workers * sweepWorkers threads. Any value
     * produces a byte-identical FleetReport (tested).
     */
    size_t sweepWorkers = 1;
    /** Simulated events per node. */
    size_t eventsPerNode = 6;
    /**
     * Multiplier on every node's event rate in the event
     * simulation only (stress the shared channel and CPU without
     * redesigning the cuts).
     */
    double eventRateScale = 1.0;
    /**
     * Steady-state serving events classified after the event
     * simulation (phase 4): segments are drawn round-robin across
     * the nodes' regenerated datasets and pushed through each
     * node's trained pipeline on the allocation-free SIMD hot path
     * (serve/). 0 disables the phase; the report is then
     * byte-identical to a build without it.
     */
    size_t servingEvents = 0;
    /**
     * Cross-user serving batch size: one inference batch spans up
     * to this many concurrent events from any mix of nodes. 0 means
     * one batch over everything. Predictions and the serialized
     * report are bit-identical at any value (tested).
     */
    size_t batchEvents = 0;
    /** Serving worker threads (0 = one per hardware thread,
     *  1 = inline). Bit-identical at any value (tested). */
    size_t servingWorkers = 1;
    AdmissionConfig admission;
    /**
     * Fault injection on the shared channel (event simulation
     * only; the design phase keeps the expectation-level channel).
     * Disabled by default: the report is then byte-identical to a
     * fault-free build.
     */
    FaultProfile faults;
    /**
     * Scripted per-node dropouts. Honored even when @ref faults is
     * disabled (the ARQ/fallback machinery is enabled with an
     * otherwise loss-free channel).
     */
    std::vector<NodeOutage> nodeOutages;
};

/**
 * N heterogeneous node specs: test cases and process nodes cycle,
 * seeds are distinct (distinct synthetic bodies).
 */
std::vector<FleetNodeSpec> heterogeneousFleet(size_t count,
                                              uint64_t seed = 2017);

/** One member of the event-level fleet simulation. */
struct FleetMember
{
    EngineTopology topology;
    Placement placement;
    /** Event injection rate. */
    double eventsPerSecond = 4.0;
};

/** Event-level outcome for one member. */
struct MemberSimResult
{
    size_t events = 0;
    /** Events finishing after the next segment was acquired. */
    size_t deadlineMisses = 0;
    Time meanLatency;
    Time worstLatency;
    /** Completion time of the member's first event. */
    Time firstCompletion;
    /** Events classified via the node's local fallback (only
     *  nonzero in fault-injected runs). */
    size_t degradedEvents = 0;
};

/** Event-level outcome of a fleet simulation. */
struct FleetSimResult
{
    std::vector<MemberSimResult> members;
    /** Simulated makespan (last completion). */
    Time span;
    /** Shared-channel busy time. */
    Time radioBusy;
    size_t transfers = 0;
    /** Aggregator CPU busy time. */
    Time aggregatorBusy;
    /** Fleet-wide fault-injection outcome; disabled for fault-free
     *  runs. */
    RobustnessReport robustness;
};

/**
 * Simulate @p events_per_node events of every member, all sharing
 * one half-duplex radio (arbitrated by @p arbiter) and one
 * aggregator CPU. Deterministic for a fixed member order.
 */
FleetSimResult simulateFleet(const std::vector<FleetMember> &members,
                             const WirelessLink &link,
                             const RadioArbiter &arbiter,
                             size_t events_per_node);

/**
 * Fault-injected fleet simulation: one Gilbert-Elliott loss chain
 * on the shared channel (draws consumed in deterministic event
 * order), bounded ARQ per transfer, a per-node outage detector with
 * local fallback, plus scripted per-node dropouts. A disabled
 * profile with no outages is exactly the overload above.
 */
FleetSimResult simulateFleet(const std::vector<FleetMember> &members,
                             const WirelessLink &link,
                             const RadioArbiter &arbiter,
                             size_t events_per_node,
                             const FaultProfile &faults,
                             const std::vector<NodeOutage>
                                 &node_outages = {});

/** Everything known about one node after a fleet run. */
struct FleetNodeResult
{
    FleetNodeSpec spec;
    XProDesign design;
    NodeAdmission admission;
    /** Evaluation of the admitted placement. */
    EngineEvaluation evaluation;
};

/** Outcome of a full fleet run. */
struct FleetResult
{
    std::vector<FleetNodeResult> nodes;
    AdmissionResult admission;
    FleetSimResult sim;
    FleetReport report;
    /**
     * Design-phase pool accounting (host timings; deliberately not
     * part of the report): total task CPU time, the busiest
     * worker's CPU time, and the wall-clock duration.
     */
    Time designWork;
    Time designMakespan;
    Time designWall;
};

/**
 * Design every node of @p specs concurrently on @p pool, with
 * @p sweep_workers threads inside each node's generator sweep.
 * Result i belongs to spec i regardless of either worker count.
 */
std::vector<XProDesign>
designFleet(const std::vector<FleetNodeSpec> &specs,
            WirelessModel wireless, double bit_error_rate,
            WorkerPool &pool, size_t sweep_workers = 1);

/** Full fleet flow: parallel design, admission, event simulation. */
FleetResult runFleet(const FleetConfig &config);

} // namespace xpro

#endif // XPRO_FLEET_FLEET_HH
