#include "fleet/radio_sched.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace xpro
{

const std::string &
FcfsArbiter::name() const
{
    static const std::string tag = "fcfs";
    return tag;
}

size_t
FcfsArbiter::grant(const std::vector<RadioRequest> &pending,
                   Time free_at, Time *start) const
{
    xproAssert(!pending.empty(), "arbitrating an empty queue");
    size_t best = 0;
    for (size_t i = 1; i < pending.size(); ++i) {
        if (pending[i].sequence < pending[best].sequence)
            best = i;
    }
    *start = std::max(free_at, pending[best].ready);
    return best;
}

TdmaArbiter::TdmaArbiter(size_t node_count, Time slot)
    : _nodeCount(node_count), _slot(slot)
{
    xproAssert(node_count > 0, "TDMA frame needs at least one slot");
    xproAssert(slot > Time(), "TDMA slot length must be positive");
}

const std::string &
TdmaArbiter::name() const
{
    static const std::string tag = "tdma";
    return tag;
}

Time
TdmaArbiter::nextSlotStart(size_t node, Time t) const
{
    xproAssert(node < _nodeCount, "node %zu has no TDMA slot", node);
    const double frame_s = frame().sec();
    const double offset_s = _slot.sec() * static_cast<double>(node);
    // First frame index whose slot for this node starts at or after
    // t (tolerating representation noise just below a boundary).
    const double k =
        std::ceil((t.sec() - offset_s) / frame_s - 1e-12);
    const double frames = std::max(k, 0.0);
    return Time::seconds(offset_s + frames * frame_s);
}

bool
TdmaArbiter::inOwnSlot(size_t node, Time t) const
{
    xproAssert(node < _nodeCount, "node %zu has no TDMA slot", node);
    const double frame_s = frame().sec();
    const double offset_s = _slot.sec() * static_cast<double>(node);
    double pos = std::fmod(t.sec() - offset_s, frame_s);
    if (pos < 0.0)
        pos += frame_s;
    return pos < _slot.sec() - 1e-12 || pos > frame_s - 1e-12;
}

size_t
TdmaArbiter::grant(const std::vector<RadioRequest> &pending,
                   Time free_at, Time *start) const
{
    xproAssert(!pending.empty(), "arbitrating an empty queue");
    size_t best = 0;
    Time best_start;
    for (size_t i = 0; i < pending.size(); ++i) {
        const Time earliest =
            std::max(free_at, pending[i].ready);
        // A transfer may start any time within one of its node's
        // own slots; outside them it waits for the next slot start.
        const Time slot_start =
            inOwnSlot(pending[i].node, earliest)
                ? earliest
                : nextSlotStart(pending[i].node, earliest);
        const bool better =
            i == 0 || slot_start < best_start ||
            (slot_start == best_start &&
             pending[i].sequence < pending[best].sequence);
        if (better) {
            best = i;
            best_start = slot_start;
        }
    }
    *start = best_start;
    return best;
}

} // namespace xpro
