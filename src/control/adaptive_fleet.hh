/**
 * @file
 * Runtime-adaptive pass over a fleet: after the standard three fleet
 * phases (parallel design, admission, shared-channel event
 * simulation), every node gets its own CrossEndController and plays
 * the nonstationary trace, re-partitioning independently as its
 * conditions drift. The pass runs sequentially in node order — the
 * design phase already exploits the worker pool, and a sequential
 * pass keeps the merged decision trace byte-identical for any worker
 * count (a tested invariant). The merged ControlReport lands in
 * FleetReport::control.
 */

#ifndef XPRO_CONTROL_ADAPTIVE_FLEET_HH
#define XPRO_CONTROL_ADAPTIVE_FLEET_HH

#include "control/adaptive_sim.hh"
#include "fleet/fleet.hh"

namespace xpro
{

/**
 * Full adaptive fleet flow: runFleet(), then the per-node adaptive
 * trace pass. Each node's controller starts from its own nominal
 * design and observes its private telemetry; the shared trace
 * supplies every node's channel and rate drift. The returned
 * result is runFleet()'s, with report.control merged over nodes
 * (decisions concatenated in node order).
 */
FleetResult runAdaptiveFleet(const FleetConfig &config,
                             const NonstationaryTrace &trace,
                             const AdaptiveRunConfig &run);

/** Merge @p node into @p fleet: counters add up, decision traces
 *  concatenate in call order. */
void mergeControlReports(ControlReport &fleet,
                         const ControlReport &node);

} // namespace xpro

#endif // XPRO_CONTROL_ADAPTIVE_FLEET_HH
