/**
 * @file
 * Nonstationary environment traces for the runtime-adaptive
 * controller: piecewise-constant schedules of offered event rate and
 * Gilbert-Elliott channel behaviour. A static XPro cut is designed
 * for one operating point; these traces describe how the operating
 * point drifts (channel fades, activity steps, overnight lulls) so
 * the controller has something to adapt to. Battery drift needs no
 * schedule — it falls out of the discharge itself (ChargeTracker).
 */

#ifndef XPRO_CONTROL_TRACE_HH
#define XPRO_CONTROL_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "wireless/fault.hh"

namespace xpro
{

/** One piecewise-constant span of the environment. */
struct ControlWindow
{
    Time duration = Time::seconds(60.0);
    /** Offered event (segment) rate during the span. */
    double eventsPerSecond = 4.0;
    /** Burst-loss behaviour of the channel during the span. The
     *  default parameters never enter the Bad state and never lose
     *  a packet, i.e. an ideal channel. */
    GilbertElliottParams channel;

    /** True when the span's channel injects no losses, so the
     *  simulators can take the exact legacy (fault-free) path. */
    bool idealChannel() const;
};

/** A piecewise-constant environment schedule. */
struct NonstationaryTrace
{
    std::vector<ControlWindow> windows;

    /** Total scheduled duration. */
    Time total() const;

    /**
     * Re-chop the schedule into control windows of length
     * @p period: each output window inherits the rate and channel
     * of the input window containing it, and input boundaries
     * always start a new output window (no window straddles an
     * environment change). The trailing chunk of an input window
     * may be shorter than @p period.
     */
    std::vector<ControlWindow> discretize(Time period) const;

    /** A constant environment (control experiments). */
    static NonstationaryTrace steady(size_t windows, Time window,
                                     double events_per_second);

    /**
     * Channel square wave: spans alternate between the ideal
     * channel and @p bad every @p half_period windows, at a
     * constant event rate. The canonical oscillation bait for
     * hysteresis tests.
     */
    static NonstationaryTrace
    squareWave(size_t windows, Time window, double events_per_second,
               size_t half_period, const GilbertElliottParams &bad);

    /**
     * A seeded day: 24 one-hour spans with an overnight event-rate
     * lull, a daytime activity step, and a few multi-hour bursty
     * channel episodes drawn from @p seed. The bench's headline
     * nonstationary scenario (battery decay + channel episodes +
     * rate step).
     */
    static NonstationaryTrace day(uint64_t seed);
};

} // namespace xpro

#endif // XPRO_CONTROL_TRACE_HH
