#include "control/adaptive_sim.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "common/logging.hh"

namespace xpro
{

namespace
{

/** Accumulate @p window (scaled counters) into @p total. */
void
mergeRobustness(RobustnessReport &total,
                const RobustnessReport &window)
{
    if (!window.enabled)
        return;
    // Mean recovery is weighted by replayed results across windows.
    const double recovery_mass =
        total.meanRecoveryMs *
            static_cast<double>(total.replayedResults) +
        window.meanRecoveryMs *
            static_cast<double>(window.replayedResults);
    total.enabled = true;
    total.packetsOffered += window.packetsOffered;
    total.packetsDelivered += window.packetsDelivered;
    total.packetsAbandoned += window.packetsAbandoned;
    total.attempts += window.attempts;
    if (window.retryHistogram.size() > total.retryHistogram.size())
        total.retryHistogram.resize(window.retryHistogram.size());
    for (size_t r = 0; r < window.retryHistogram.size(); ++r)
        total.retryHistogram[r] += window.retryHistogram[r];
    total.probes += window.probes;
    total.degradedEvents += window.degradedEvents;
    total.bufferedResults += window.bufferedResults;
    total.replayedResults += window.replayedResults;
    total.outages += window.outages;
    total.outageTimeMs += window.outageTimeMs;
    total.meanRecoveryMs =
        total.replayedResults > 0
            ? recovery_mass /
                  static_cast<double>(total.replayedResults)
            : 0.0;
}

/** Standby power of the in-sensor half of @p placement. */
Power
placementStandby(const EngineTopology &topology,
                 const Placement &placement)
{
    Power standby;
    for (size_t u = 1; u < topology.graph.nodeCount(); ++u) {
        if (placement.inSensor(u))
            standby += topology.graph.node(u).costs.sensorStandby;
    }
    return standby;
}

/**
 * Memo key of one window outcome. A lossy window's loss sequence is
 * seeded by its schedule slot, so the slot (plus the duty level,
 * which fixes the event count) identifies the outcome. An ideal
 * window has no seed at all — its outcome is a pure function of the
 * offered rate and the sampled event count, so every ideal window
 * at the same operating point shares one entry ("i:" keys), which
 * collapses the first trace pass to one simulation per operating
 * point instead of one per window.
 */
std::string
memoKey(size_t slot, bool ideal, double rate, size_t sampled,
        const Placement &placement, size_t duty)
{
    char head[64];
    if (ideal)
        std::snprintf(head, sizeof(head), "i:%.17g:%zu:", rate,
                      sampled);
    else
        std::snprintf(head, sizeof(head), "%zu:%zu:", slot, duty);
    std::string key = head;
    for (size_t u = 1; u < placement.size(); ++u)
        key += placement.inSensor(u) ? '1' : '0';
    return key;
}

/**
 * The shared window-stepping engine behind the adaptive and static
 * entry points. One instance per run; lifetime loops keep it alive
 * across trace passes so the controller, battery tracker and memo
 * survive.
 */
struct WindowedRun
{
    const EngineTopology &topology;
    const WirelessLink &link;
    const AdaptiveRunConfig &config;
    /** Null for the static variant. */
    CrossEndController *controller = nullptr;
    Placement placement; ///< active placement (frozen when static)
    /** Standby power of `placement`'s in-sensor half (cached —
     *  placements change only at adopted handovers). */
    Power standby;

    ChargeTracker battery;
    Time now;
    /** Handover energy adopted at the previous boundary, charged
     *  with the next window's drain. */
    Energy pendingHandover;
    /** Window outcomes keyed by (slot, placement, duty). */
    std::map<std::string, StreamResult> memo;

    // Aggregates across windows.
    StreamResult total;
    Energy batteryEnergy;
    size_t simulatedWindows = 0;
    double latencyMass = 0.0; ///< mean latency weighted by events
    long double deadlineMass = 0.0;
    long double degradedMass = 0.0;

    WindowedRun(const EngineTopology &topo, const WirelessLink &l,
                const AdaptiveRunConfig &cfg)
        : topology(topo), link(l), config(cfg),
          battery(cfg.sensor.battery)
    {}

    /** Install @p next as the active placement. */
    void setPlacement(const Placement &next)
    {
        placement = next;
        standby = placementStandby(topology, placement);
    }

    /** Play one control window; returns false once depleted. */
    bool step(size_t slot, const ControlWindow &window);

    /** Fold the weighted latency/miss masses into `total`. */
    void finalize();
};

bool
WindowedRun::step(size_t slot, const ControlWindow &window)
{
    const double duty =
        controller ? controller->dutyFactor() : 1.0;
    const double rate = window.eventsPerSecond * duty;
    const size_t events = static_cast<size_t>(
        std::floor(window.duration.sec() * rate));

    static const StreamResult idle;
    const StreamResult *window_stream = &idle;
    double scale = 1.0;
    size_t sampled = 0;
    if (events > 0) {
        sampled = config.sampleCap > 0
                      ? std::min(events, config.sampleCap)
                      : events;
        scale = static_cast<double>(events) /
                static_cast<double>(sampled);
        const std::string key =
            memoKey(slot, window.idealChannel(), rate, sampled,
                    placement,
                    controller ? controller->dutyLevel() : 0);
        auto hit = memo.find(key);
        if (hit == memo.end()) {
            StreamResult fresh;
            if (window.idealChannel()) {
                fresh = simulateStream(topology, placement, link,
                                       rate, sampled);
            } else {
                fresh = simulateStream(
                    topology, placement, link, rate, sampled,
                    windowFaultProfile(config.faults, window.channel,
                                       slot));
            }
            hit = memo.emplace(key, std::move(fresh)).first;
        }
        window_stream = &hit->second;
    }
    const StreamResult &stream = *window_stream;

    // Wall-clock-honest battery energy: strip the standby share the
    // simulator baked into each event at the design rate, integrate
    // the active placement's true standby over the window instead,
    // and add the sensing front-end plus any pending handover.
    const Energy standby_baked =
        standby *
        Time::seconds(static_cast<double>(events) /
                      topology.designEventsPerSecond);
    const Energy window_energy =
        stream.sensorEnergy.total() * scale - standby_baked +
        standby.during(window.duration) +
        config.sensor.sensingPower.during(window.duration) +
        pendingHandover;
    pendingHandover = Energy();

    const Time boundary = now + window.duration;
    battery.drainTo(boundary, window_energy);
    batteryEnergy += window_energy;
    now = boundary;

    // Aggregate the scaled window outcome.
    ++simulatedWindows;
    total.events += events;
    total.sensorEnergy.compute +=
        stream.sensorEnergy.compute * scale;
    total.sensorEnergy.tx += stream.sensorEnergy.tx * scale;
    total.sensorEnergy.rx += stream.sensorEnergy.rx * scale;
    total.worstLatency =
        std::max(total.worstLatency, stream.worstLatency);
    latencyMass +=
        stream.meanLatency.ms() * static_cast<double>(events);
    deadlineMass +=
        static_cast<double>(stream.deadlineMisses) * scale;
    degradedMass +=
        static_cast<double>(stream.degradedEvents) * scale;
    mergeRobustness(total.robustness, stream.robustness);
    if (simulatedWindows == 1) {
        // A single-window run must reproduce simulateStream() bit
        // for bit; re-deriving mean/misses through the weighted
        // masses could drift in the last ulp.
        total.meanLatency = stream.meanLatency;
        total.deadlineMisses = static_cast<size_t>(std::llround(
            static_cast<double>(stream.deadlineMisses) * scale));
        total.degradedEvents = static_cast<size_t>(std::llround(
            static_cast<double>(stream.degradedEvents) * scale));
    } else {
        total.meanLatency =
            total.events > 0
                ? Time::millis(latencyMass /
                               static_cast<double>(total.events))
                : Time();
        total.deadlineMisses = static_cast<size_t>(
            std::llround(static_cast<double>(deadlineMass)));
        total.degradedEvents = static_cast<size_t>(
            std::llround(static_cast<double>(degradedMass)));
    }

    if (battery.depleted())
        return false;

    if (controller) {
        ControlTelemetry telemetry;
        telemetry.at = boundary;
        telemetry.eventsPerSecond = window.eventsPerSecond;
        telemetry.stateOfCharge = battery.stateOfCharge();
        const RobustnessReport &channel = stream.robustness;
        telemetry.meanAttemptsPerPacket =
            channel.enabled && channel.packetsOffered > 0
                ? static_cast<double>(channel.attempts) /
                      static_cast<double>(channel.packetsOffered)
                : 1.0;
        const ControlDecision decision =
            controller->observe(telemetry);
        if (decision.movedCells > 0) {
            setPlacement(controller->placement());
            pendingHandover = Energy::micros(decision.handoverUj);
        }
    }
    return true;
}

void
WindowedRun::finalize()
{
    if (controller)
        total.control = controller->report();
}

AdaptiveStreamResult
runOnce(WindowedRun &run, const NonstationaryTrace &trace)
{
    const std::vector<ControlWindow> schedule =
        trace.discretize(run.config.control.repartitionPeriod);
    for (size_t slot = 0; slot < schedule.size(); ++slot) {
        if (!run.step(slot, schedule[slot]))
            break;
    }
    run.finalize();

    AdaptiveStreamResult result;
    result.stream = run.total;
    result.batteryEnergy = run.batteryEnergy;
    result.finalStateOfCharge = run.battery.stateOfCharge();
    result.finalPlacement = run.placement;
    return result;
}

LifetimeResult
runUntilDepleted(WindowedRun &run, const NonstationaryTrace &trace)
{
    const std::vector<ControlWindow> schedule =
        trace.discretize(run.config.control.repartitionPeriod);
    xproAssert(!schedule.empty(), "empty trace");

    LifetimeResult result;
    for (size_t pass = 0; pass < run.config.maxPasses; ++pass) {
        const Energy before = run.batteryEnergy;
        bool alive = true;
        for (size_t slot = 0; slot < schedule.size() && alive;
             ++slot) {
            alive = run.step(slot, schedule[slot]);
        }
        ++result.tracePasses;
        if (!alive) {
            run.finalize();
            result.lifetime = run.battery.depletionTime();
            result.events = run.total.events;
            result.control = run.total.control;
            return result;
        }
        if ((run.batteryEnergy - before).j() <= 0.0) {
            fatal("trace pass consumed no energy; lifetime is "
                  "unbounded");
        }
    }
    panic("battery did not deplete within %zu trace passes",
          run.config.maxPasses);
}

} // namespace

AdaptiveStreamResult
simulateAdaptiveStream(const EngineTopology &topology,
                       const WirelessLink &link,
                       const NonstationaryTrace &trace,
                       const AdaptiveRunConfig &config)
{
    CrossEndController controller(topology, link, config.control);
    WindowedRun run(topology, link, config);
    run.controller = &controller;
    run.setPlacement(controller.placement());
    return runOnce(run, trace);
}

AdaptiveStreamResult
simulateStaticStream(const EngineTopology &topology,
                     const Placement &placement,
                     const WirelessLink &link,
                     const NonstationaryTrace &trace,
                     const AdaptiveRunConfig &config)
{
    WindowedRun run(topology, link, config);
    run.setPlacement(placement);
    return runOnce(run, trace);
}

LifetimeResult
adaptiveLifetime(const EngineTopology &topology,
                 const WirelessLink &link,
                 const NonstationaryTrace &trace,
                 const AdaptiveRunConfig &config)
{
    CrossEndController controller(topology, link, config.control);
    WindowedRun run(topology, link, config);
    run.controller = &controller;
    run.setPlacement(controller.placement());
    return runUntilDepleted(run, trace);
}

LifetimeResult
staticLifetime(const EngineTopology &topology,
               const Placement &placement, const WirelessLink &link,
               const NonstationaryTrace &trace,
               const AdaptiveRunConfig &config)
{
    WindowedRun run(topology, link, config);
    run.setPlacement(placement);
    return runUntilDepleted(run, trace);
}

} // namespace xpro
