/**
 * @file
 * The online cross-end controller: closes the loop around the
 * Automatic XPro Generator at run time.
 *
 * The static generator picks one cut for one operating point; the
 * controller re-evaluates that choice at every control-window
 * boundary from three telemetry signals — battery state of charge
 * (platform/ChargeTracker), observed channel cost (mean ARQ attempts
 * per packet from the RobustnessReport) and observed event rate —
 * and re-partitions mid-stream when drift makes a different cut
 * cheaper. Every re-solve reuses the generator's persistent
 * warm-started flow network (setTransferEnergyScale / setEventRate +
 * a warm generate()); a controller never cold-solves after its first
 * design, which the bench gates on coldSolves() == 1.
 *
 * Adopted re-partitions migrate cells through a bounded-cost
 * handover: the stream drains at the window boundary, each migrating
 * cell's architectural state crosses the link once as a snapshot
 * payload, and one cutover frame commits the switch; the energy and
 * airtime are priced through the same wireless link the payloads
 * use, and charged against the decision (a proposal whose projected
 * dwell-period saving does not cover its handover cost is rejected).
 *
 * Knobs against thrashing: a hysteresis band (relative objective
 * improvement a proposal must beat) and a minimum dwell time between
 * adopted re-partitions. AdaSense-style duty-cycle levels are a
 * third decision variable: battery bands map the state of charge to
 * a fraction of offered events actually analyzed, trading detection
 * latency for lifetime as the battery empties (monotone in time, so
 * duty levels need no hysteresis of their own).
 *
 * All decisions are pure functions of telemetry and configuration —
 * no clocks, no host randomness — so decision traces are
 * byte-identical run-to-run and at any worker count.
 */

#ifndef XPRO_CONTROL_CONTROLLER_HH
#define XPRO_CONTROL_CONTROLLER_HH

#include <map>
#include <utility>
#include <vector>

#include "core/partitioner.hh"
#include "core/report.hh"

namespace xpro
{

/** Tuning of the runtime-adaptive controller. */
struct ControlConfig
{
    /** Master switch; false = the static design runs untouched. */
    bool enabled = true;
    /** Control-window length (decision cadence). */
    Time repartitionPeriod = Time::seconds(60.0);
    /**
     * Hysteresis band: the relative objective improvement a
     * proposed cut must exceed before it can be adopted
     * (0.05 = 5%). Proposals inside the band hold the current
     * placement, so a channel oscillating around the break-even
     * point cannot make the controller thrash.
     */
    double hysteresis = 0.05;
    /** Minimum time between adopted re-partitions. */
    Time minDwell = Time::seconds(120.0);
    /**
     * Duty-cycle levels: fraction of offered events analyzed, level
     * 0 first. Strictly positive, non-increasing.
     */
    std::vector<double> dutyLevels = {1.0, 0.6, 0.35};
    /**
     * Quantization step for the observed channel scale (mean ARQ
     * attempts per packet). Telemetry is rounded to this grid
     * before it prices the flow network, which makes decisions
     * robust to per-window sampling noise and bounds the number of
     * distinct operating points the controller ever solves for
     * (repeats hit the proposal cache instead of re-sweeping).
     */
    double scaleQuantum = 0.05;
    /**
     * Retention cap on the decision trace: counters in the report
     * always cover every window, but only the first this many
     * decisions are kept (ControlReport::droppedDecisions counts
     * the rest). Lifetime runs replay the trace for simulated
     * weeks; an unbounded trace would dominate memory. 0 = keep
     * everything.
     */
    size_t decisionTraceCap = 4096;
    /**
     * State-of-charge thresholds activating the deeper levels:
     * level i (i >= 1) is active while soc < socThresholds[i - 1].
     * Size must be dutyLevels.size() - 1, strictly decreasing.
     */
    std::vector<double> socThresholds = {0.35, 0.15};

    /** Panics on nonsense parameters. */
    void validate() const;
};

/** What the controller observed over the closing control window. */
struct ControlTelemetry
{
    /** Simulated time of the window boundary. */
    Time at;
    /** Mean ARQ attempts per offered packet (1 = nominal). */
    double meanAttemptsPerPacket = 1.0;
    /** Offered event rate observed over the window. */
    double eventsPerSecond = 0.0;
    /** Battery state of charge in [0, 1] at the boundary. */
    double stateOfCharge = 1.0;
};

/** Energy/airtime bill of one adopted handover. */
struct HandoverCost
{
    size_t movedCells = 0;
    /** Snapshot + cutover energy drawn from the sensor battery. */
    Energy sensorEnergy;
    /** Link occupancy of the migration. */
    Time airTime;
};

/** The online re-partitioning controller of one sensor node. */
class CrossEndController
{
  public:
    /**
     * Designs the initial placement with a cold solve at the
     * nominal operating point; every later decision re-solves warm.
     */
    CrossEndController(const EngineTopology &topology,
                       const WirelessLink &link,
                       const ControlConfig &config,
                       const GeneratorOptions &options = {});

    /** The placement currently in force. */
    const Placement &placement() const { return _placement; }

    /** Active duty-cycle level / fraction of events analyzed. */
    size_t dutyLevel() const { return _dutyLevel; }
    double dutyFactor() const
    {
        return _config.dutyLevels[_dutyLevel];
    }

    /**
     * Close a control window: evaluate @p telemetry, maybe adopt a
     * new placement and duty level. The returned decision is also
     * appended to the report's trace. Call in simulated-time order.
     */
    ControlDecision observe(const ControlTelemetry &telemetry);

    /**
     * Price the migration from the active placement to @p next:
     * every moved cell's output register crosses the link once as a
     * snapshot payload, plus one cutover frame. The drain phase is
     * free here because decisions land on window boundaries, where
     * the pipeline is already empty.
     */
    HandoverCost handoverCost(const Placement &next) const;

    /** Decision trace so far (solve counters refreshed). */
    ControlReport report() const;

    /** The controller's generator (solve-counter inspection). */
    const XProGenerator &generator() const { return _generator; }

  private:
    size_t dutyLevelFor(double soc) const;

    const EngineTopology &_topology;
    const WirelessLink &_link;
    ControlConfig _config;
    XProGenerator _generator;
    Placement _placement;
    /** A solved operating point: the best cut and its price. */
    struct CachedProposal
    {
        Placement placement;
        Energy objective;
    };
    /** Warm proposals per (quantized scale, effective rate)
     *  operating point: repeats skip the generator sweep. */
    std::map<std::pair<double, double>, CachedProposal> _proposals;
    /** Price of the *active* placement per operating point;
     *  invalidated whenever a re-partition is adopted. */
    std::map<std::pair<double, double>, Energy> _currentObjectives;
    size_t _dutyLevel = 0;
    bool _everRepartitioned = false;
    Time _lastRepartition;
    ControlReport _report;
};

} // namespace xpro

#endif // XPRO_CONTROL_CONTROLLER_HH
