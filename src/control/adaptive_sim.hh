/**
 * @file
 * Windowed adaptive stream simulation: plays a nonstationary trace
 * through the event-driven system simulator one control window at a
 * time, with the CrossEndController closing the loop at every
 * boundary.
 *
 * Each control window is simulated as its own event stream under the
 * placement and duty level in force (fault-injected when the
 * window's channel is lossy, the exact legacy path when it is
 * ideal). A window boundary is precisely the drain phase of the
 * handover protocol — the pipeline is empty when the controller
 * cuts over — so mid-stream migration needs no in-flight state
 * transfer beyond the cells' snapshot payloads.
 *
 * Energy accounting is wall-clock honest: the per-event standby
 * share baked into the cells' sensorEnergy (amortized at the
 * topology's design rate) is stripped and replaced by the active
 * placement's true standby power integrated over the window, plus
 * the sensing front-end and any handover payloads. Duty-cycling
 * therefore saves execution and wireless energy but never fakes a
 * standby saving.
 *
 * Long windows are sampled: at most AdaptiveRunConfig::sampleCap
 * events are actually simulated and the result is scaled to the
 * window's true event count. Telemetry counters keep the raw
 * (sampled) values.
 *
 * Everything is deterministic: per-window fault seeds derive from
 * the base seed and the window index alone, so repeated trace
 * passes re-draw identical loss sequences and the lifetime loops
 * can memoize window outcomes by (window, placement, duty).
 */

#ifndef XPRO_CONTROL_ADAPTIVE_SIM_HH
#define XPRO_CONTROL_ADAPTIVE_SIM_HH

#include "control/controller.hh"
#include "control/trace.hh"
#include "platform/battery_sim.hh"
#include "platform/sensor_node.hh"
#include "sim/system_sim.hh"

namespace xpro
{

/** Configuration of one adaptive (or static-reference) run. */
struct AdaptiveRunConfig
{
    ControlConfig control;
    /**
     * ARQ / outage-detector / probe machinery for lossy windows;
     * the burst parameters and enabled flag are ignored — each
     * window derives its own profile from the trace's channel via
     * windowFaultProfile().
     */
    FaultProfile faults;
    /** Battery and sensing front-end of the simulated node. */
    SensorNodeConfig sensor;
    /**
     * Cap on simulated events per control window (0 = simulate
     * every event). Windows above the cap are sampled and scaled.
     */
    size_t sampleCap = 128;
    /** Safety cap on trace passes in the lifetime loops. */
    size_t maxPasses = 4000;
};

/** Outcome of playing a trace once. */
struct AdaptiveStreamResult
{
    /** Aggregated stream outcome; control holds the decision
     *  trace (disabled for the static variant). */
    StreamResult stream;
    /** Total energy drawn from the sensor battery, including
     *  standby, sensing and handover payloads. */
    Energy batteryEnergy;
    /** State of charge when the trace ended. */
    double finalStateOfCharge = 1.0;
    /** Placement in force when the trace ended. */
    Placement finalPlacement;
};

/** Outcome of repeating a trace until the battery dies. */
struct LifetimeResult
{
    Time lifetime;
    /** Full or partial passes played before depletion. */
    size_t tracePasses = 0;
    /** Events analyzed before depletion. */
    size_t events = 0;
    /** Decision trace (disabled for the static variant). */
    ControlReport control;
};

/**
 * Play @p trace once under the controller: the initial placement is
 * the controller's own nominal design, then every control window
 * boundary may re-partition, re-tune the duty level, or hold.
 */
AdaptiveStreamResult
simulateAdaptiveStream(const EngineTopology &topology,
                       const WirelessLink &link,
                       const NonstationaryTrace &trace,
                       const AdaptiveRunConfig &config);

/**
 * Play @p trace once with @p placement frozen and full duty: the
 * static reference the controller is judged against. With a
 * single-window ideal-channel trace this reproduces
 * simulateStream() bit for bit (a tested invariant).
 */
AdaptiveStreamResult
simulateStaticStream(const EngineTopology &topology,
                     const Placement &placement,
                     const WirelessLink &link,
                     const NonstationaryTrace &trace,
                     const AdaptiveRunConfig &config);

/** Repeat the trace under the controller until the battery dies. */
LifetimeResult adaptiveLifetime(const EngineTopology &topology,
                                const WirelessLink &link,
                                const NonstationaryTrace &trace,
                                const AdaptiveRunConfig &config);

/** Repeat the trace with a frozen placement until the battery
 *  dies. */
LifetimeResult staticLifetime(const EngineTopology &topology,
                              const Placement &placement,
                              const WirelessLink &link,
                              const NonstationaryTrace &trace,
                              const AdaptiveRunConfig &config);

} // namespace xpro

#endif // XPRO_CONTROL_ADAPTIVE_SIM_HH
