#include "control/trace.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/random.hh"

namespace xpro
{

bool
ControlWindow::idealChannel() const
{
    return channel.lossGood == 0.0 && channel.pGoodToBad == 0.0;
}

Time
NonstationaryTrace::total() const
{
    Time sum;
    for (const ControlWindow &window : windows)
        sum += window.duration;
    return sum;
}

std::vector<ControlWindow>
NonstationaryTrace::discretize(Time period) const
{
    xproAssert(period.sec() > 0.0, "non-positive control period");
    std::vector<ControlWindow> chopped;
    for (const ControlWindow &window : windows) {
        Time left = window.duration;
        while (left.sec() > 0.0) {
            ControlWindow piece = window;
            piece.duration = std::min(left, period);
            chopped.push_back(piece);
            left = left - piece.duration;
        }
    }
    return chopped;
}

NonstationaryTrace
NonstationaryTrace::steady(size_t windows, Time window,
                           double events_per_second)
{
    xproAssert(windows > 0, "empty trace");
    NonstationaryTrace trace;
    ControlWindow span;
    span.duration = window;
    span.eventsPerSecond = events_per_second;
    trace.windows.assign(windows, span);
    return trace;
}

NonstationaryTrace
NonstationaryTrace::squareWave(size_t windows, Time window,
                               double events_per_second,
                               size_t half_period,
                               const GilbertElliottParams &bad)
{
    xproAssert(windows > 0, "empty trace");
    xproAssert(half_period > 0, "zero half period");
    NonstationaryTrace trace;
    for (size_t w = 0; w < windows; ++w) {
        ControlWindow span;
        span.duration = window;
        span.eventsPerSecond = events_per_second;
        if ((w / half_period) % 2 == 1)
            span.channel = bad;
        trace.windows.push_back(span);
    }
    return trace;
}

NonstationaryTrace
NonstationaryTrace::day(uint64_t seed)
{
    Rng rng(seed);
    NonstationaryTrace trace;
    trace.windows.reserve(24);
    for (size_t hour = 0; hour < 24; ++hour) {
        ControlWindow span;
        span.duration = Time::hours(1.0);
        // Overnight lull, then the daytime activity step the static
        // design point never sees.
        if (hour < 7)
            span.eventsPerSecond = 1.0;
        else if (hour < 20)
            span.eventsPerSecond = 4.0;
        else
            span.eventsPerSecond = 2.0;
        trace.windows.push_back(span);
    }
    // A few multi-hour bursty-channel episodes (commute, gym, a
    // crowded evening): deep fades that multiply the cost of every
    // wireless crossing via ARQ retries. The episodes are deep
    // enough (~80% of the time in the Bad state) that a design
    // holding its nominal cut pays several transmissions per
    // packet, which is what makes mid-stream re-partitioning pay.
    GilbertElliottParams bad;
    bad.lossGood = 0.1;
    bad.lossBad = 0.95;
    bad.pGoodToBad = 0.4;
    bad.pBadToGood = 0.1;
    const size_t episodes = 2 + static_cast<size_t>(rng.below(2));
    for (size_t e = 0; e < episodes; ++e) {
        const size_t start = 7 + static_cast<size_t>(rng.below(14));
        const size_t hours = 1 + static_cast<size_t>(rng.below(3));
        for (size_t h = start; h < std::min<size_t>(start + hours, 24);
             ++h) {
            trace.windows[h].channel = bad;
        }
    }
    return trace;
}

} // namespace xpro
