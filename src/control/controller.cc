#include "control/controller.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/stats_registry.hh"

namespace xpro
{

namespace
{

// Stable scope: controller decisions are a deterministic function
// of the telemetry stream (adaptive fleet runs are sequential per
// node), so these match the ControlReport totals at any worker
// count. handover_nj accumulates migration energy in integer
// nanojoules so the counter stays exact.
struct ControlStatIds
{
    StatId windows, repartitions, hysteresisHolds, dwellHolds;
    StatId resolves, handoverNj;
};

const ControlStatIds &
controlStatIds()
{
    static const ControlStatIds ids = [] {
        StatsRegistry &reg = StatsRegistry::instance();
        return ControlStatIds{
            reg.registerCounter("control.windows"),
            reg.registerCounter("control.repartitions"),
            reg.registerCounter("control.hysteresis_holds"),
            reg.registerCounter("control.dwell_holds"),
            reg.registerCounter("control.resolves"),
            reg.registerCounter("control.handover_nj")};
    }();
    return ids;
}

} // namespace

void
ControlConfig::validate() const
{
    xproAssert(repartitionPeriod.sec() > 0.0,
               "non-positive repartition period");
    xproAssert(hysteresis >= 0.0, "negative hysteresis %f",
               hysteresis);
    xproAssert(minDwell.sec() >= 0.0, "negative dwell time");
    xproAssert(scaleQuantum >= 0.0, "negative scale quantum");
    xproAssert(!dutyLevels.empty(), "no duty levels");
    xproAssert(socThresholds.size() + 1 == dutyLevels.size(),
               "%zu duty levels need %zu thresholds, got %zu",
               dutyLevels.size(), dutyLevels.size() - 1,
               socThresholds.size());
    for (size_t i = 0; i < dutyLevels.size(); ++i) {
        xproAssert(dutyLevels[i] > 0.0 && dutyLevels[i] <= 1.0,
                   "duty level %zu = %f out of (0, 1]", i,
                   dutyLevels[i]);
        if (i > 0) {
            xproAssert(dutyLevels[i] <= dutyLevels[i - 1],
                       "duty levels must not increase");
        }
    }
    for (size_t i = 0; i < socThresholds.size(); ++i) {
        xproAssert(socThresholds[i] > 0.0 && socThresholds[i] < 1.0,
                   "soc threshold %zu = %f out of (0, 1)", i,
                   socThresholds[i]);
        if (i > 0) {
            xproAssert(socThresholds[i] < socThresholds[i - 1],
                       "soc thresholds must decrease");
        }
    }
}

CrossEndController::CrossEndController(const EngineTopology &topology,
                                       const WirelessLink &link,
                                       const ControlConfig &config,
                                       const GeneratorOptions &options)
    : _topology(topology), _link(link), _config(config),
      _generator(topology, link, options)
{
    _config.validate();
    _placement = _generator.generate().placement;
    StatsRegistry::instance().add(controlStatIds().resolves);
    _report.enabled = true;
}

size_t
CrossEndController::dutyLevelFor(double soc) const
{
    size_t level = 0;
    for (size_t i = 0; i < _config.socThresholds.size(); ++i) {
        if (soc < _config.socThresholds[i])
            level = i + 1;
    }
    return level;
}

HandoverCost
CrossEndController::handoverCost(const Placement &next) const
{
    HandoverCost cost;
    for (size_t u = 1; u < _topology.graph.nodeCount(); ++u) {
        if (_placement.inSensor(u) == next.inSensor(u))
            continue;
        ++cost.movedCells;
        // Snapshot: the cell's output register crosses the link
        // once. Migrating out of the sensor transmits it; migrating
        // in receives it. Airtime is paid either way.
        const TransferCost snapshot =
            _link.transfer(_topology.graph.node(u).outputBits);
        cost.sensorEnergy += _placement.inSensor(u)
                                 ? snapshot.txEnergy
                                 : snapshot.rxEnergy;
        cost.airTime += snapshot.airTime;
    }
    if (cost.movedCells > 0) {
        // One cutover frame commits the new cell map on both ends.
        const TransferCost cutover =
            _link.transfer(packetHeaderBits);
        cost.sensorEnergy += cutover.txEnergy;
        cost.airTime += cutover.airTime;
    }
    return cost;
}

ControlDecision
CrossEndController::observe(const ControlTelemetry &telemetry)
{
    ControlDecision decision;
    decision.window = _report.windows;
    decision.atMs = telemetry.at.ms();
    // Quantize the channel observation: decisions become robust to
    // per-window sampling noise and the set of operating points the
    // generator ever prices stays small (see _proposals).
    const double raw_scale =
        std::max(1.0, telemetry.meanAttemptsPerPacket);
    decision.observedScale =
        _config.scaleQuantum > 0.0
            ? std::round(raw_scale / _config.scaleQuantum) *
                  _config.scaleQuantum
            : raw_scale;
    decision.observedScale = std::max(1.0, decision.observedScale);
    decision.observedRate = telemetry.eventsPerSecond;
    decision.stateOfCharge = telemetry.stateOfCharge;

    // Duty level is a pure function of the (monotone) state of
    // charge, so it cannot oscillate and needs no hysteresis.
    const size_t duty = dutyLevelFor(telemetry.stateOfCharge);
    const bool retuned = duty != _dutyLevel;
    _dutyLevel = duty;
    decision.dutyLevel = duty;

    // Re-price the persistent flow network at the observed
    // operating point and re-solve warm.
    const double effective_rate =
        telemetry.eventsPerSecond > 0.0
            ? telemetry.eventsPerSecond * _config.dutyLevels[duty]
            : _topology.designEventsPerSecond;
    _generator.setTransferEnergyScale(decision.observedScale);
    _generator.setEventRate(effective_rate);
    const auto key =
        std::make_pair(decision.observedScale, effective_rate);
    auto cached = _proposals.find(key);
    if (cached == _proposals.end()) {
        StatsRegistry::instance().add(controlStatIds().resolves);
        Placement best = _generator.generate().placement;
        const Energy price = _generator.objective(best);
        cached = _proposals
                     .emplace(key, CachedProposal{std::move(best),
                                                  price})
                     .first;
    }
    const Placement &proposal = cached->second.placement;
    const Energy proposed = cached->second.objective;

    auto priced = _currentObjectives.find(key);
    if (priced == _currentObjectives.end()) {
        priced = _currentObjectives
                     .emplace(key, _generator.objective(_placement))
                     .first;
    }
    const Energy current = priced->second;
    decision.improvement =
        current.j() > 0.0 ? (current - proposed) / current : 0.0;

    size_t moved = 0;
    for (size_t u = 1; u < _topology.graph.nodeCount(); ++u)
        moved += _placement.inSensor(u) != proposal.inSensor(u);

    StatsRegistry &sreg = StatsRegistry::instance();
    const ControlStatIds &sids = controlStatIds();
    if (moved == 0) {
        decision.action = retuned ? "retune" : "steady";
    } else if (decision.improvement <= _config.hysteresis) {
        decision.action = "hold";
        ++_report.hysteresisHolds;
        sreg.add(sids.hysteresisHolds);
    } else if (_everRepartitioned &&
               telemetry.at - _lastRepartition < _config.minDwell) {
        decision.action = "dwell";
        ++_report.dwellHolds;
        sreg.add(sids.dwellHolds);
    } else {
        const HandoverCost handover = handoverCost(proposal);
        // Bounded cost: the projected saving over the time the new
        // cut is guaranteed to stay in force (one dwell period, or
        // at least one control window when the dwell is shorter)
        // must cover the migration itself.
        const Time horizon =
            std::max(_config.minDwell, _config.repartitionPeriod);
        const Energy saving = (current - proposed) *
                              (effective_rate * horizon.sec());
        if (saving < handover.sensorEnergy) {
            decision.action = "hold";
            ++_report.hysteresisHolds;
            sreg.add(sids.hysteresisHolds);
        } else {
            decision.action = "repartition";
            decision.movedCells = handover.movedCells;
            decision.handoverUj = handover.sensorEnergy.uj();
            decision.handoverMs = handover.airTime.ms();
            _placement = proposal;
            _currentObjectives.clear();
            _everRepartitioned = true;
            _lastRepartition = telemetry.at;
            ++_report.repartitions;
            _report.handoverTotalUj += handover.sensorEnergy.uj();
            _report.handoverTotalMs += handover.airTime.ms();
            sreg.add(sids.repartitions);
            sreg.add(sids.handoverNj,
                     static_cast<uint64_t>(std::llround(
                         handover.sensorEnergy.nj())));
        }
    }

    decision.sensorCells = _placement.sensorCellCount();
    ++_report.windows;
    sreg.add(sids.windows);
    if (_config.decisionTraceCap == 0 ||
        _report.decisions.size() < _config.decisionTraceCap) {
        _report.decisions.push_back(decision);
    } else {
        ++_report.droppedDecisions;
    }
    return decision;
}

ControlReport
CrossEndController::report() const
{
    ControlReport report = _report;
    report.coldSolves = _generator.coldSolves();
    report.warmSolves = _generator.warmSolves();
    return report;
}

} // namespace xpro
