#include "control/adaptive_fleet.hh"

#include "common/logging.hh"
#include "wireless/transceiver.hh"

namespace xpro
{

void
mergeControlReports(ControlReport &fleet, const ControlReport &node)
{
    if (!node.enabled)
        return;
    fleet.enabled = true;
    fleet.windows += node.windows;
    fleet.repartitions += node.repartitions;
    fleet.hysteresisHolds += node.hysteresisHolds;
    fleet.dwellHolds += node.dwellHolds;
    fleet.coldSolves += node.coldSolves;
    fleet.warmSolves += node.warmSolves;
    fleet.handoverTotalUj += node.handoverTotalUj;
    fleet.handoverTotalMs += node.handoverTotalMs;
    fleet.droppedDecisions += node.droppedDecisions;
    fleet.decisions.insert(fleet.decisions.end(),
                           node.decisions.begin(),
                           node.decisions.end());
}

FleetResult
runAdaptiveFleet(const FleetConfig &config,
                 const NonstationaryTrace &trace,
                 const AdaptiveRunConfig &run)
{
    xproAssert(run.control.enabled,
               "adaptive fleet pass with the controller disabled");
    FleetResult result = runFleet(config);

    ChannelModel channel;
    channel.bitErrorRate = config.bitErrorRate;
    const WirelessLink link(transceiver(config.wireless), channel);

    // Sequential in node order: the decision traces must be
    // byte-identical for any design-phase worker count.
    for (const FleetNodeResult &node : result.nodes) {
        AdaptiveRunConfig node_run = run;
        node_run.sensor.process = node.spec.process;
        const AdaptiveStreamResult adaptive = simulateAdaptiveStream(
            node.design.topology, link, trace, node_run);
        mergeControlReports(result.report.control,
                            adaptive.stream.control);
    }
    return result;
}

} // namespace xpro
