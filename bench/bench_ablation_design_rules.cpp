/**
 * @file
 * Ablation study of the paper's three functional-cell design rules
 * (Section 3.1) and of the broadcast refinement (DESIGN.md Section
 * 5), measured on the full six-case workload at 90 nm / Model 2:
 *
 *  1. Rule 2 (per-component optimal monotonic ALU mode): compare the
 *     generator's results when every cell is forced serial, forced
 *     pipeline or forced parallel.
 *  2. Rule 3 (cell-level reuse, Std reuses Var): build topologies
 *     with reuse disabled.
 *  3. Broadcast transfers: recompute the chosen cut's wireless
 *     energy under naive per-edge accounting to show how much the
 *     dummy-node generalization matters.
 *  4. Wavelet family: Haar's 2-tap filters halve the DWT cell work
 *     relative to the Db4 default; the trade-off is classification
 *     accuracy, reported alongside.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/transfers.hh"

using namespace xpro;
using namespace xpro::bench;

namespace
{

/** Average XPro sensor energy (uJ) over the six cases. */
double
averageCrossEndEnergy(CaseLibrary &library, const EngineConfig &config)
{
    double sum = 0.0;
    for (TestCase tc : allTestCases) {
        sum += evaluateCase(library, tc, config, EngineKind::CrossEnd)
                   .sensorEnergy.total()
                   .uj();
    }
    return sum / static_cast<double>(allTestCases.size());
}

/** Wireless energy of a placement under naive per-edge accounting. */
Energy
perEdgeWirelessEnergy(const EngineTopology &topology,
                      const Placement &placement,
                      const WirelessLink &link)
{
    Energy total;
    bool raw_counted = false;
    for (size_t u = 0; u < topology.graph.nodeCount(); ++u) {
        for (size_t v : topology.graph.successors(u)) {
            const size_t bits = topology.graph.edgeBits(u, v);
            if (placement.inSensor(u) && !placement.inSensor(v)) {
                total += link.transfer(bits).txEnergy;
                raw_counted |= u == DataflowGraph::sourceId;
            } else if (!placement.inSensor(u) &&
                       placement.inSensor(v)) {
                total += link.transfer(bits).rxEnergy;
            }
        }
    }
    (void)raw_counted;
    if (placement.inSensor(topology.fusionNode))
        total += link.transfer(EngineTopology::resultBits).txEnergy;
    return total;
}

} // namespace

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;

    std::printf("Ablation: functional-cell design rules "
                "(90nm, Model 2; XPro sensor energy, uJ/event "
                "averaged over 6 cases)\n\n");

    // --- Rule 2: ALU mode policy -------------------------------
    EngineConfig optimal = paperConfig();
    EngineConfig serial = optimal;
    serial.modePolicy = ModePolicy::ForceSerial;
    EngineConfig pipeline = optimal;
    pipeline.modePolicy = ModePolicy::ForcePipeline;
    EngineConfig parallel = optimal;
    parallel.modePolicy = ModePolicy::ForceParallel;

    const double e_optimal = averageCrossEndEnergy(library, optimal);
    const double e_serial = averageCrossEndEnergy(library, serial);
    const double e_pipeline =
        averageCrossEndEnergy(library, pipeline);
    const double e_parallel =
        averageCrossEndEnergy(library, parallel);
    std::printf("Rule 2 (ALU mode):  optimal=%.2f  all-serial=%.2f  "
                "all-pipeline=%.2f  all-parallel=%.2f\n",
                e_optimal, e_serial, e_pipeline, e_parallel);

    checker.check(e_optimal <= e_serial + 1e-9,
                  "per-component optimal mode never loses to forced "
                  "serial");
    checker.check(e_optimal <= e_pipeline + 1e-9,
                  "per-component optimal mode never loses to forced "
                  "pipeline");
    checker.check(e_parallel > 1.5 * e_optimal,
                  "forced parallel is ruinous (the Fig. 4 DWT blowup "
                  "at engine scale)");

    // --- Rule 3: cell-level reuse ------------------------------
    EngineConfig no_reuse = optimal;
    no_reuse.enableCellReuse = false;
    const double e_no_reuse =
        averageCrossEndEnergy(library, no_reuse);
    std::printf("Rule 3 (Std reuses Var): with=%.2f  without=%.2f "
                "(%.1f%% saved)\n",
                e_optimal, e_no_reuse,
                100.0 * (e_no_reuse - e_optimal) / e_no_reuse);
    checker.check(e_optimal <= e_no_reuse + 1e-9,
                  "cell-level reuse never increases sensor energy");

    // --- Broadcast vs. per-edge accounting ---------------------
    double broadcast_sum = 0.0;
    double per_edge_sum = 0.0;
    const WirelessLink link(transceiver(optimal.wireless));
    for (TestCase tc : allTestCases) {
        const EngineTopology topo = library.topology(tc, optimal);
        const Placement placement =
            enginePlacement(EngineKind::CrossEnd, topo, link);
        const SensorEnergyBreakdown e =
            sensorEventEnergy(topo, placement, link);
        broadcast_sum += e.wireless().uj();
        per_edge_sum +=
            perEdgeWirelessEnergy(topo, placement, link).uj();
    }
    std::printf("Broadcast accounting: wireless=%.2f uJ vs per-edge "
                "%.2f uJ (x%.2f inflation without fan-out "
                "sharing)\n",
                broadcast_sum / 6.0, per_edge_sum / 6.0,
                per_edge_sum / broadcast_sum);
    checker.check(per_edge_sum >= broadcast_sum - 1e-9,
                  "per-edge accounting never undercounts a broadcast");
    checker.check(per_edge_sum > 1.2 * broadcast_sum,
                  "fan-out sharing saves a substantial fraction of "
                  "the wireless energy on the chosen cuts");

    // --- Wavelet family ----------------------------------------
    EngineConfig haar = optimal;
    haar.wavelet = Wavelet::Haar;
    // Haar changes both the features (training) and the DWT cell
    // cost; retrain one representative case for the accuracy side.
    const SignalDataset e1 = makeTestCase(TestCase::E1);
    const TrainedPipeline db4_pipeline =
        trainPipeline(e1, optimal, paperTraining());
    const TrainedPipeline haar_pipeline =
        trainPipeline(e1, haar, paperTraining());
    const CellWorkload db4_dwt = dwtLevelWorkload(128, 4);
    const CellWorkload haar_dwt = dwtLevelWorkload(128, 2);
    const Technology &tech90 = Technology::get(ProcessNode::Tsmc90);
    const double db4_nj = bestCellCosts(db4_dwt, tech90).energy.nj();
    const double haar_nj =
        bestCellCosts(haar_dwt, tech90).energy.nj();
    std::printf("Wavelet (E1): DWT-L1 cell %.1f nJ (Db4) vs %.1f nJ "
                "(Haar); accuracy %.1f%% vs %.1f%%\n",
                db4_nj, haar_nj, 100.0 * db4_pipeline.testAccuracy,
                100.0 * haar_pipeline.testAccuracy);
    checker.check(haar_nj < 0.7 * db4_nj,
                  "Haar roughly halves the DWT cell energy");
    checker.check(haar_pipeline.testAccuracy > 0.7,
                  "Haar remains usable on the EEG case");
    return checker.finish("bench_ablation_design_rules");
}
