/**
 * @file
 * Regenerates paper Table 1: attributes of the 6 test cases from
 * the 5 biosignal datasets, as materialized by the synthetic
 * generators, plus shape checks that the reproduction matches the
 * published attributes exactly.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    std::printf("Table 1: Attributes of 6 test cases from 5 "
                "biosignal datasets\n\n");
    std::printf("%-16s %-8s %-10s %-10s %-10s %-10s\n", "Dataset",
                "Symbol", "SegLength", "SegNumber", "Class+",
                "Events/s");

    CaseLibrary library;
    ShapeChecker checker;

    const struct
    {
        TestCase id;
        size_t length;
        size_t number;
    } paper[] = {
        {TestCase::C1, 82, 1162},  {TestCase::C2, 136, 884},
        {TestCase::E1, 128, 1000}, {TestCase::E2, 128, 1000},
        {TestCase::M1, 132, 1200}, {TestCase::M2, 132, 1200},
    };

    for (const auto &row : paper) {
        const SignalDataset &ds = library.dataset(row.id);
        std::printf("%-16s %-8s %-10zu %-10zu %-10zu %-10.2f\n",
                    ds.name.c_str(), ds.symbol.c_str(),
                    ds.segmentLength, ds.size(), ds.positiveCount(),
                    ds.eventsPerSecond());
    }
    std::printf("\nShape checks vs. paper Table 1:\n");
    for (const auto &row : paper) {
        const SignalDataset &ds = library.dataset(row.id);
        checker.check(ds.segmentLength == row.length,
                      ds.symbol + " segment length == " +
                          std::to_string(row.length));
        checker.check(ds.size() == row.number,
                      ds.symbol + " segment number == " +
                          std::to_string(row.number));
        const double balance =
            static_cast<double>(ds.positiveCount()) /
            static_cast<double>(ds.size());
        checker.check(balance > 0.45 && balance < 0.55,
                      ds.symbol + " classes roughly balanced");
    }
    return checker.finish("bench_table1_datasets");
}
