/**
 * @file
 * Regenerates paper Fig. 11: per-event sensor-node energy of the
 * three engines, broken down into functional-cell computation and
 * wireless communication (90 nm, wireless Model 2). Shape checks:
 * the aggregator engine's sensor energy is pure transmission and the
 * largest; the sensor node engine's wireless share is negligible;
 * and the cross-end engine spends the least in every case (paper:
 * S saves 36.6% vs A on average, C saves another 31.7% vs S).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;
    const EngineConfig config = paperConfig();

    std::printf("Fig. 11: sensor energy per event in uJ "
                "(compute + wireless = total)\n\n");
    std::printf("%-4s  %-26s %-26s %-26s\n", "case",
                "aggregator engine (A)", "sensor node engine (S)",
                "cross-end engine (C)");

    double sum[3] = {0, 0, 0};
    bool a_is_pure_wireless = true;
    bool s_wireless_negligible = true;
    bool c_always_cheapest = true;

    for (TestCase tc : allTestCases) {
        std::printf("%-4s ", library.dataset(tc).symbol.c_str());
        double totals[3];
        int idx = 0;
        for (EngineKind kind :
             {EngineKind::InAggregator, EngineKind::InSensor,
              EngineKind::CrossEnd}) {
            const SensorEnergyBreakdown e =
                evaluateCase(library, tc, config, kind).sensorEnergy;
            std::printf("  %6.2f + %5.2f = %6.2f    ",
                        e.compute.uj(), e.wireless().uj(),
                        e.total().uj());
            totals[idx] = e.total().uj();
            if (kind == EngineKind::InAggregator)
                a_is_pure_wireless &= e.compute.uj() < 1e-9;
            if (kind == EngineKind::InSensor)
                s_wireless_negligible &=
                    e.wireless() < e.total() * 0.05;
            ++idx;
        }
        std::printf("\n");
        c_always_cheapest &= totals[2] <= totals[0] + 1e-9 &&
                             totals[2] <= totals[1] + 1e-9;
        for (int i = 0; i < 3; ++i)
            sum[i] += totals[i];
    }

    const double n = static_cast<double>(allTestCases.size());
    std::printf("\naverages: A=%.2f uJ, S=%.2f uJ, C=%.2f uJ "
                "(S saves %.1f%% vs A; C saves %.1f%% vs S, "
                "%.1f%% vs A)\n",
                sum[0] / n, sum[1] / n, sum[2] / n,
                100.0 * (sum[0] - sum[1]) / sum[0],
                100.0 * (sum[1] - sum[2]) / sum[1],
                100.0 * (sum[0] - sum[2]) / sum[0]);

    std::printf("\nShape checks vs. paper Fig. 11:\n");
    checker.check(a_is_pure_wireless,
                  "aggregator engine's sensor energy is pure data "
                  "transmission");
    checker.check(s_wireless_negligible,
                  "sensor node engine's wireless energy is barely "
                  "visible (result only)");
    checker.check(c_always_cheapest,
                  "cross-end engine has the lowest sensor energy in "
                  "every case");
    checker.check(sum[1] < sum[0],
                  "sensor node engine saves energy vs the aggregator "
                  "engine (paper: 36.6%)");
    checker.check(sum[2] < sum[1],
                  "cross-end saves additional energy vs the sensor "
                  "node engine (paper: 31.7%)");
    return checker.finish("bench_fig11_energy_breakdown");
}
