/**
 * @file
 * Classification quality of the generic framework on the six test
 * cases (paper Section 4.4's training protocol: 75/25 stratified
 * split, min-max normalization, random subspace of RBF-SVMs with
 * least-squares-trained weighted voting). The paper does not
 * tabulate accuracies -- its evaluation presumes the generic
 * classifier works on all six cases -- so the shape check here is
 * that every case is learned well above chance and the
 * non-"difficult" cases reach high accuracy, and that the
 * quantized (all-Q16.16) inference pipeline agrees with the
 * double-precision pipeline on nearly every decision -- the
 * validation of the paper's 32-bit fixed-number design choice.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/fixed_pipeline.hh"
#include "ml/metrics.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;

    std::printf("Generic classification quality (75/25 split)\n\n");
    std::printf("%-4s %-16s %10s %10s %8s %10s %10s %10s\n", "case",
                "dataset", "train acc", "test acc", "bases",
                "features", "SVs/base", "fixed agr");

    double worst = 1.0;
    double worst_easy = 1.0;
    double worst_agreement = 1.0;
    for (TestCase tc : allTestCases) {
        const TrainedPipeline &p = library.pipeline(tc);
        const SignalDataset &ds = library.dataset(tc);
        size_t sv_total = 0;
        for (const BaseClassifier &base : p.ensemble.bases())
            sv_total += base.model.supportVectorCount();
        const FixedPipeline quantized(p);
        const double agreement =
            FixedPipeline::agreement(p, quantized, ds, 150);
        worst_agreement = std::min(worst_agreement, agreement);
        std::printf("%-4s %-16s %9.1f%% %9.1f%% %8zu %10zu %10.1f "
                    "%9.1f%%\n",
                    ds.symbol.c_str(), ds.name.c_str(),
                    100.0 * p.trainAccuracy, 100.0 * p.testAccuracy,
                    p.ensemble.bases().size(),
                    p.ensemble.usedFeatureIndices().size(),
                    static_cast<double>(sv_total) /
                        static_cast<double>(
                            p.ensemble.bases().size()),
                    100.0 * agreement);
        worst = std::min(worst, p.testAccuracy);
        if (tc != TestCase::E2)
            worst_easy = std::min(worst_easy, p.testAccuracy);
    }

    std::printf("\nShape checks:\n");
    checker.check(worst > 0.55,
                  "every case is learned above chance (worst " +
                      std::to_string(100.0 * worst) + "%)");
    checker.check(worst_easy > 0.8,
                  "all non-'difficult' cases reach high accuracy");
    checker.check(worst_agreement > 0.93,
                  "the all-fixed-point (Q16.16) pipeline agrees with "
                  "double-precision inference (worst " +
                      std::to_string(100.0 * worst_agreement) +
                      "%)");
    return checker.finish("bench_accuracy");
}
