/**
 * @file
 * Regenerates paper Fig. 12: sensor battery lifetime of four
 * possible cuts -- the aggregator engine, the sensor node engine,
 * the intuitive "trivial" cut between the feature extractors and the
 * classifiers, and the cut found by the Automatic XPro Generator
 * (90 nm, wireless Model 2). Shape checks: the generator's cut is
 * consistently the best, while the trivial cut is inconsistent
 * (better than both single ends in some cases, worse in others) --
 * the paper's argument for formal generation over intuition.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;
    const EngineConfig config = paperConfig();

    std::printf("Fig. 12: battery lifetime of four cuts "
                "(hours; normalized to A in brackets)\n\n");
    std::printf("%-4s %14s %14s %14s %14s\n", "case", "Aggregator",
                "Trivial", "Sensor", "Cross");

    bool cross_always_best = true;
    size_t trivial_above_both = 0;
    size_t trivial_below_both = 0;

    for (TestCase tc : allTestCases) {
        double life[4];
        int idx = 0;
        for (EngineKind kind :
             {EngineKind::InAggregator, EngineKind::TrivialCut,
              EngineKind::InSensor, EngineKind::CrossEnd}) {
            life[idx++] = evaluateCase(library, tc, config, kind)
                              .sensorLifetime.hr();
        }
        std::printf("%-4s %8.0f(1.00) %8.0f(%.2f) %8.0f(%.2f) "
                    "%8.0f(%.2f)\n",
                    library.dataset(tc).symbol.c_str(), life[0],
                    life[1], life[1] / life[0], life[2],
                    life[2] / life[0], life[3], life[3] / life[0]);
        cross_always_best &= life[3] >= life[0] - 1e-6 &&
                             life[3] >= life[1] - 1e-6 &&
                             life[3] >= life[2] - 1e-6;
        const double best_single = std::max(life[0], life[2]);
        const double worst_single = std::min(life[0], life[2]);
        if (life[1] > best_single)
            ++trivial_above_both;
        if (life[1] < worst_single)
            ++trivial_below_both;
    }

    std::printf("\ntrivial cut: above both single ends in %zu "
                "case(s), below both in %zu case(s)\n",
                trivial_above_both, trivial_below_both);

    std::printf("\nShape checks vs. paper Fig. 12:\n");
    checker.check(cross_always_best,
                  "the Automatic XPro Generator's cut gives the "
                  "longest lifetime in every case");
    checker.check(trivial_above_both + trivial_below_both <
                      allTestCases.size(),
                  "the trivial cut is not consistently extreme");
    checker.check(trivial_above_both < allTestCases.size(),
                  "the trivial cut does not consistently beat the "
                  "single-end designs (paper: improvement 'not very "
                  "consistent')");
    return checker.finish("bench_fig12_cuts");
}
