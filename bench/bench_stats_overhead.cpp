/**
 * @file
 * Overhead gate for the fleet-wide stats registry (DESIGN.md §17):
 * instrumentation must cost <= 3% of population-fleet events/sec.
 *
 * In-binary A/B at a population-fleet shape: the same run with
 * PopulationFleetConfig::collectStats off (per-shard slab writes
 * skipped — the closest in-process stand-in for a -DXPRO_STATS=OFF
 * build) versus on, best of three interleaved rounds each so CPU
 * warm-up and frequency drift hit both arms alike. The true
 * cross-build comparison (stats compiled out entirely) is
 * scripts/check_stats_overhead.sh, which builds -DXPRO_STATS=OFF
 * and compares this bench's baseline key across binaries.
 *
 * Also re-asserts the tentpole's snapshot contract at bench scale:
 * the stable stats section is byte-identical across shard/worker
 * combinations.
 *
 * XPRO_BENCH_SMOKE=1 shrinks the fleet so CI's JSON-shape check can
 * run every bench quickly; the timing gate is skipped under smoke
 * (sub-second runs are too noisy to gate on).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "fleet/fleet.hh"
#include "obs/stats_export.hh"
#include "obs/stats_registry.hh"

using namespace xpro;
using namespace xpro::bench;

namespace
{

PopulationFleetConfig
shape(uint64_t nodes, size_t shards, size_t workers,
      bool collect_stats)
{
    PopulationFleetConfig config;
    config.nodes = nodes;
    config.shards = shards;
    config.workers = workers;
    config.eventsPerNode = 2;
    config.collectStats = collect_stats;
    return config;
}

} // namespace

int
main()
{
    ShapeChecker checker;
    const bool smoke = std::getenv("XPRO_BENCH_SMOKE") != nullptr;
    const uint64_t nodes = smoke ? 10000 : 100000;
    constexpr size_t kShards = 8;
    const int kRounds = smoke ? 2 : 16;

    std::printf("stats %s; %llu nodes, %zu shards, best of %d\n\n",
                statsCompiledIn() ? "compiled in" : "compiled OUT",
                static_cast<unsigned long long>(nodes), kShards,
                kRounds);

    // Warm both arms at the FULL shape: the first run at a new
    // fleet size pages in code, faults the node slabs and grows the
    // wheel slot vectors, and that one-time cost lands on whichever
    // arm goes first — a small-shape warm-up does not cover it.
    runPopulationFleet(shape(nodes, kShards, 1, false));
    runPopulationFleet(shape(nodes, kShards, 1, true));

    // Measurement discipline for a noisy shared box (often 1 vCPU
    // with co-tenant load, where machine speed drifts by more than
    // the 3% effect under test):
    //  - process CPU time, not wall clock — descheduling stretches
    //    don't count against either arm;
    //  - many short slices interleaved ABBA ABBA..., so slow drift
    //    hits both arms equally (ABBA cancels linear drift that a
    //    plain ABAB alternation folds into one arm);
    //  - the gate compares the two arms' AGGREGATE events per CPU
    //    second across all slices — averaging over 2x kRounds
    //    slices shrinks per-slice noise by ~sqrt(n).
    const auto cpuSeconds = [] {
        timespec ts{};
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    };
    std::vector<double> base_rates, inst_rates;
    const auto slice = [&](bool collect_stats) {
        const double start = cpuSeconds();
        const PopulationFleetResult result = runPopulationFleet(
            shape(nodes, kShards, 1, collect_stats));
        const double s = cpuSeconds() - start;
        if (s > 0.0)
            (collect_stats ? inst_rates : base_rates)
                .push_back(static_cast<double>(
                               result.report.totalEvents) /
                           s);
    };
    for (int r = 0; r < kRounds; ++r) {
        // One ABBA block per round.
        slice(false);
        slice(true);
        slice(true);
        slice(false);
    }
    // Per-slice rates on this class of box are heavy-tailed (an
    // interrupt storm or co-tenant cache blast can cost one slice
    // several percent), so compare symmetric trimmed means: drop
    // the fastest and slowest eighth of each arm, average the rest.
    const auto trimmedMean = [](std::vector<double> rates) {
        if (rates.empty())
            return 0.0;
        std::sort(rates.begin(), rates.end());
        const size_t trim = rates.size() / 8;
        double sum = 0.0;
        size_t n = 0;
        for (size_t i = trim; i < rates.size() - trim; ++i) {
            sum += rates[i];
            ++n;
        }
        return n > 0 ? sum / static_cast<double>(n) : 0.0;
    };
    const double base_rate = trimmedMean(base_rates);
    const double inst_rate = trimmedMean(inst_rates);
    const double overhead_pct =
        base_rate > 0.0
            ? 100.0 * (base_rate - inst_rate) / base_rate
            : 0.0;
    std::printf("  baseline     : %.0f events/cpu-s over %d "
                "slices (stats off)\n",
                base_rate, 2 * kRounds);
    std::printf("  instrumented : %.0f events/cpu-s over %d "
                "slices (stats on)\n",
                inst_rate, 2 * kRounds);
    std::printf("  overhead     : %.2f%%\n\n", overhead_pct);

    checker.check(base_rate > 0.0 && inst_rate > 0.0,
                  "both arms completed and were timed");
    if (smoke) {
        std::printf("  (smoke shape: <= 3%% overhead gate "
                    "skipped)\n");
    } else {
        checker.check(inst_rate >= 0.97 * base_rate,
                      "instrumented throughput within 3% of the "
                      "stats-off baseline (aggregate CPU-time "
                      "rate)");
    }

    // Snapshot determinism at bench scale: stable section
    // byte-identical across shards x workers.
    if (statsCompiledIn()) {
        StatsRegistry &reg = StatsRegistry::instance();
        const uint64_t check_nodes = smoke ? 4096 : 20000;
        const auto stableAt = [&](size_t shards, size_t workers) {
            reg.reset();
            runPopulationFleet(
                shape(check_nodes, shards, workers, true));
            return statsStableJson(reg.snapshot());
        };
        const std::string reference = stableAt(1, 1);
        const bool identical = stableAt(8, 2) == reference &&
                               stableAt(16, 4) == reference;
        checker.check(identical,
                      "stable stats section byte-identical across "
                      "shards {1,8,16} x workers {1,2,4}");
        reg.reset();
    }

    checker.metric("baseline_events_per_sec", base_rate);
    checker.metric("stats_overhead_pct", overhead_pct);
    // Completed node-events per second with stats on — the shared
    // "events_per_sec" key (finish() appends peak_rss_mb).
    checker.metric("events_per_sec", inst_rate);
    return checker.finish("bench_stats_overhead");
}
