/**
 * @file
 * Regenerates paper Fig. 9: sensor-node battery life under the
 * three wireless transceiver models at 90 nm, for the three engines
 * on all six test cases, normalized to the aggregator engine under
 * Model 1 (the paper's normalization). Shape checks: with the
 * "high-energy" Model 1 the sensor node engine beats the aggregator
 * engine; the trend reverses under the ultra-low-power Model 3
 * (the paper's crossover); and the cross-end engine is never worse
 * than the better *feasible* single-end design.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;

    std::printf("Fig. 9: normalized battery life at 90nm "
                "(A under Model 1 = 1.0)\n");

    double sum_sa[3] = {0, 0, 0};
    double sum_cbest[3] = {0, 0, 0};
    for (size_t mi = 0; mi < allWirelessModels.size(); ++mi) {
        const WirelessModel model = allWirelessModels[mi];
        std::printf("\n-- %s --\n", wirelessModelName(model).c_str());
        std::printf("%-4s %10s %10s %10s\n", "case", "A", "S", "C");
        for (TestCase tc : allTestCases) {
            EngineConfig config = paperConfig();
            config.wireless = model;

            EngineConfig model1 = config;
            model1.wireless = WirelessModel::Model1;
            const double base =
                evaluateCase(library, tc, model1,
                             EngineKind::InAggregator)
                    .sensorLifetime.hr();

            const double a =
                evaluateCase(library, tc, config,
                             EngineKind::InAggregator)
                    .sensorLifetime.hr();
            const double s =
                evaluateCase(library, tc, config,
                             EngineKind::InSensor)
                    .sensorLifetime.hr();
            const double c =
                evaluateCase(library, tc, config,
                             EngineKind::CrossEnd)
                    .sensorLifetime.hr();
            std::printf("%-4s %10.2f %10.2f %10.2f\n",
                        library.dataset(tc).symbol.c_str(), a / base,
                        s / base, c / base);
            sum_sa[mi] += s / a;
            sum_cbest[mi] += c / std::max(a, s);
        }
    }

    const double n = static_cast<double>(allTestCases.size());
    std::printf("\naverages: ");
    for (size_t mi = 0; mi < 3; ++mi) {
        std::printf("[Model %zu: S/A=%.2f C/best-single=%.2f] ",
                    mi + 1, sum_sa[mi] / n, sum_cbest[mi] / n);
    }

    std::printf("\n\nShape checks vs. paper Fig. 9:\n");
    checker.check(sum_sa[0] / n > 1.5,
                  "Model 1 (high-energy radio): sensor node engine "
                  "far outlives the aggregator engine");
    checker.check(sum_sa[1] / n > 1.0,
                  "Model 2: sensor node engine still ahead of the "
                  "aggregator engine");
    checker.check(sum_sa[2] / n < 1.0,
                  "Model 3 (ultra-low-power radio): the trend "
                  "reverses, the aggregator engine outlives the "
                  "sensor node engine (paper: +74.6%; measured " +
                      std::to_string(1.0 / (sum_sa[2] / n)) + "x)");
    checker.check(sum_cbest[0] / n >= 1.0 && sum_cbest[1] / n >= 1.0,
                  "Models 1-2: cross-end beats the better single-end "
                  "design");
    checker.check(sum_cbest[2] / n >= 0.85,
                  "Model 3: cross-end stays within ~15% of the "
                  "energy-best single end while also meeting the "
                  "tighter delay limit (see EXPERIMENTS.md note)");
    return checker.finish("bench_fig9_wireless_models");
}
