/**
 * @file
 * Chaos-resilience gate (DESIGN.md §18): does the population fleet
 * keep its throughput and deliver (nearly) every event when
 * gateways crash, the cloud disappears and nodes churn?
 *
 * Three measurements at 100k nodes:
 *
 *  A. Fault-free reference run: sustained events/sec with no chaos
 *     schedule (the shared "events_per_sec" JSON key's
 *     denominator).
 *  B. A gateway-loss day: the flaky profile crashes every gateway
 *     repeatedly across the trace; self-healing failover must keep
 *     eventual event completeness >= 99% of the offered load, and
 *     the sustained rate within 15% of the fault-free run.
 *  C. The full harsh schedule (crashes + regional outages + cloud
 *     windows + churn): the report must stay byte-identical across
 *     shard/worker combinations while the chaos layer is actively
 *     migrating nodes and re-keying queue items.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "fleet/chaos.hh"
#include "fleet/fleet.hh"

using namespace xpro;
using namespace xpro::bench;

namespace
{

PopulationFleetConfig
chaosConfig(uint64_t nodes, size_t shards, size_t workers,
            uint64_t events, const ChaosConfig &chaos)
{
    PopulationFleetConfig config;
    config.nodes = nodes;
    config.shards = shards;
    config.workers = workers;
    config.eventsPerNode = events;
    config.chaos = chaos;
    // Provision the cloud tier for the fleet's offered load so the
    // only throttling measured is the chaos layer's own.
    config.tiers.cloudEventsPerSec = 5000000;
    return config;
}

} // namespace

int
main()
{
    ShapeChecker checker;
    // XPRO_BENCH_SMOKE=1: CI's JSON-shape check runs a reduced
    // fleet and skips the timing-sensitive rate gate; the
    // completeness and byte-identity gates are structural and stay
    // on at any scale.
    const bool smoke = std::getenv("XPRO_BENCH_SMOKE") != nullptr;
    const uint64_t kNodes = smoke ? 20000 : 100000;
    const uint64_t kEvents = smoke ? 6 : 20;
    const size_t kShards = 16;
    const size_t kWorkers = 0; // one per hardware thread

    const ChaosConfig none;
    const ChaosConfig flaky = ChaosConfig::profile("flaky");
    const ChaosConfig harsh = ChaosConfig::profile("harsh");

    // Warm both paths (page in code, grow arenas/slot vectors).
    runPopulationFleet(chaosConfig(1024, 4, 1, 2, flaky));

    // Both timing gates use best-of-3 wall clock: the simulation is
    // deterministic, so the fastest repeat is the least-preempted
    // measurement of the same work.
    const int kRepeats = smoke ? 1 : 3;
    const auto bestSeconds = [&](const ChaosConfig &chaos,
                                 PopulationFleetResult &out) {
        double best = 0.0;
        for (int r = 0; r < kRepeats; ++r) {
            SteadyTimer timer;
            out = runPopulationFleet(chaosConfig(
                kNodes, kShards, kWorkers, kEvents, chaos));
            const double s = timer.seconds();
            if (r == 0 || s < best)
                best = s;
        }
        return best;
    };

    std::printf("== A: fault-free reference at %llu nodes ==\n\n",
                static_cast<unsigned long long>(kNodes));
    PopulationFleetResult plain;
    const double plain_s = bestSeconds(none, plain);
    const double plain_rate =
        static_cast<double>(plain.report.totalEvents) / plain_s;
    std::printf("  %zu events in %.3f s -> %.0f events/s\n\n",
                plain.report.totalEvents, plain_s, plain_rate);

    std::printf("== B: gateway-loss day (flaky schedule) ==\n\n");
    PopulationFleetResult hit;
    const double chaos_s = bestSeconds(flaky, hit);
    const double chaos_rate =
        static_cast<double>(hit.report.totalEvents) / chaos_s;
    const uint64_t offered = kNodes * kEvents;
    const ChaosReport &cr = hit.report.chaos;
    std::printf("  %zu events in %.3f s -> %.0f events/s "
                "(%.1f%% of fault-free)\n",
                hit.report.totalEvents, chaos_s, chaos_rate,
                100.0 * chaos_rate / plain_rate);
    std::printf("  %zu crashes, %zu failovers, %zu nodes migrated, "
                "%zu items re-keyed, %zu retries\n\n",
                cr.gatewayCrashes, cr.failovers, cr.migratedNodes,
                cr.rekeyedItems, cr.retries);

    checker.check(cr.gatewayCrashes > 0 && cr.failovers > 0,
                  "the schedule actually lost gateways and the "
                  "layer actually failed over");
    // Gate (a): eventual completeness. Failover + retry must route
    // >= 99% of the offered events through to a completion despite
    // every gateway dying repeatedly along the day.
    const double completeness =
        static_cast<double>(hit.report.totalEvents) /
        static_cast<double>(offered);
    std::printf("  completeness %.3f%% of %llu offered\n\n",
                100.0 * completeness,
                static_cast<unsigned long long>(offered));
    checker.check(completeness >= 0.99,
                  ">= 99% eventual event completeness across the "
                  "gateway-loss day");
    // Gate (b): the chaos machinery (down-map checks, failover
    // re-keying, backoff retries) must not cost more than 15% of
    // the fault-free sustained rate.
    if (!smoke) {
        checker.check(chaos_rate >= plain_rate * 0.85,
                      "sustained events/sec within 15% of the "
                      "fault-free run at 100k nodes");
    }

    std::printf("== C: harsh schedule byte-identity ==\n\n");
    const std::string reference =
        runPopulationFleet(
            chaosConfig(kNodes / 10, 1, 1, 6, harsh))
            .report.serialize();
    bool identical = true;
    for (size_t shards : {4, 16}) {
        for (size_t workers : {1, 4}) {
            identical &=
                runPopulationFleet(chaosConfig(kNodes / 10, shards,
                                               workers, 6, harsh))
                    .report.serialize() == reference;
        }
    }
    std::printf("  report %s across shards {1,4,16} x workers "
                "{1,4}\n\n",
                identical ? "byte-identical" : "DIVERGED");
    checker.check(identical,
                  "harsh-schedule report byte-identical across "
                  "shard/worker combinations");

    checker.metric("fault_free_events_per_sec", plain_rate);
    checker.metric("chaos_rate_fraction", chaos_rate / plain_rate);
    checker.metric("completeness", completeness);
    checker.metric("failovers", static_cast<double>(cr.failovers));
    checker.metric("migrated_nodes",
                   static_cast<double>(cr.migratedNodes));
    checker.throughput(hit.report.totalEvents, chaos_s);
    return checker.finish("bench_fleet_chaos");
}
