/**
 * @file
 * Regenerates paper Fig. 8: sensor-node battery life under 130 nm,
 * 90 nm and 45 nm process technologies with wireless Model 2, for
 * the sensor node engine (S), aggregator engine (A) and cross-end
 * engine (C) on all six test cases, normalized to the aggregator
 * engine. Shape checks: the cross-end engine wins everywhere; the
 * sensor node engine's advantage over the aggregator engine grows as
 * the process shrinks (the paper's headline technology trend); and
 * the average C-vs-A / C-vs-S improvements land in the paper's
 * reported band.
 */

#include <cstdio>

#include "bench_common.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;

    std::printf("Fig. 8: normalized battery life (wireless Model 2; "
                "A = 1.0)\n");

    double sum_sa[3] = {0, 0, 0};
    double sum_ca[3] = {0, 0, 0};
    double sum_cs[3] = {0, 0, 0};
    bool cross_always_best = true;

    for (size_t ni = 0; ni < allProcessNodes.size(); ++ni) {
        const ProcessNode node = allProcessNodes[ni];
        std::printf("\n-- %s --\n", processNodeName(node).c_str());
        std::printf("%-4s %10s %10s %10s   (hours: A)\n", "case",
                    "A", "S", "C");
        for (TestCase tc : allTestCases) {
            EngineConfig config = paperConfig();
            config.process = node;
            config.wireless = WirelessModel::Model2;
            const double a =
                evaluateCase(library, tc, config,
                             EngineKind::InAggregator)
                    .sensorLifetime.hr();
            const double s =
                evaluateCase(library, tc, config,
                             EngineKind::InSensor)
                    .sensorLifetime.hr();
            const double c =
                evaluateCase(library, tc, config,
                             EngineKind::CrossEnd)
                    .sensorLifetime.hr();
            std::printf("%-4s %10.2f %10.2f %10.2f   (%.0f h)\n",
                        library.dataset(tc).symbol.c_str(), 1.0,
                        s / a, c / a, a);
            sum_sa[ni] += s / a;
            sum_ca[ni] += c / a;
            sum_cs[ni] += c / s;
            cross_always_best &= c >= s - 1e-9 && c >= a - 1e-9;
        }
    }

    const double n = static_cast<double>(allTestCases.size());
    std::printf("\naverages: ");
    for (size_t ni = 0; ni < 3; ++ni) {
        std::printf("[%s: S/A=%.2f C/A=%.2f C/S=%.2f] ",
                    processNodeName(allProcessNodes[ni]).c_str(),
                    sum_sa[ni] / n, sum_ca[ni] / n, sum_cs[ni] / n);
    }
    std::printf("\n\nShape checks vs. paper Fig. 8:\n");
    checker.check(cross_always_best,
                  "cross-end engine has the longest battery life in "
                  "every case and node");
    checker.check(sum_sa[0] < sum_sa[1] && sum_sa[1] < sum_sa[2],
                  "sensor-vs-aggregator advantage grows as the "
                  "process shrinks (130 -> 90 -> 45 nm)");
    checker.check(sum_ca[1] / n > 1.5,
                  "90nm: cross-end extends battery life over the "
                  "aggregator engine by a large factor (paper: 2.4x; "
                  "measured " + std::to_string(sum_ca[1] / n) + "x)");
    checker.check(sum_cs[1] / n > 1.1,
                  "90nm: cross-end extends battery life over the "
                  "sensor node engine (paper: 1.6x; measured " +
                      std::to_string(sum_cs[1] / n) + "x)");
    return checker.finish("bench_fig8_process_tech");
}
