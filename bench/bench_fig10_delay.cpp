/**
 * @file
 * Regenerates paper Fig. 10: end-to-end event-processing delay of
 * the aggregator (A), sensor node (S) and cross-end (C) engines,
 * broken down into front-end compute, wireless and back-end compute
 * (90 nm, wireless Model 2). The analytic critical-path breakdown is
 * cross-checked against the event-driven system simulator (which
 * serializes the radio). Shape checks: every delay is under the
 * paper's 4 ms real-time bound; the aggregator engine is slowest;
 * and the cross-end engine cuts the average delay versus both
 * single-end designs (paper: -60.8% vs A, -15.6% vs S).
 */

#include <cstdio>

#include "bench_common.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;
    const EngineConfig config = paperConfig();
    const WirelessLink link(transceiver(config.wireless));

    std::printf("Fig. 10: delay breakdown in ms "
                "(front / wireless / back = total | simulated)\n\n");
    std::printf("%-4s  %-34s %-34s %-34s\n", "case",
                "aggregator engine (A)", "sensor node engine (S)",
                "cross-end engine (C)");

    double sum_a = 0.0;
    double sum_s = 0.0;
    double sum_c = 0.0;
    bool all_under_4ms = true;
    bool a_always_slowest = true;
    bool sim_matches = true;

    for (TestCase tc : allTestCases) {
        const EngineTopology topo = library.topology(tc, config);
        std::printf("%-4s ", library.dataset(tc).symbol.c_str());
        double totals[3] = {0, 0, 0};
        int idx = 0;
        for (EngineKind kind :
             {EngineKind::InAggregator, EngineKind::InSensor,
              EngineKind::CrossEnd}) {
            const Placement placement =
                enginePlacement(kind, topo, link);
            const DelayBreakdown d =
                eventDelay(topo, placement, link);
            const SimResult sim =
                simulateEvent(topo, placement, link);
            std::printf(" %5.3f/%5.3f/%5.3f = %5.3f | %5.3f  ",
                        d.frontCompute.ms(), d.wireless.ms(),
                        d.backCompute.ms(), d.total().ms(),
                        sim.completion.ms());
            totals[idx++] = d.total().ms();
            all_under_4ms &= sim.completion.ms() < 4.0;
            // The simulator serializes the radio, so it can only be
            // slower; within 2x it confirms contention is mild.
            sim_matches &=
                sim.completion.ms() >= d.total().ms() - 1e-9 &&
                sim.completion.ms() <= 2.0 * d.total().ms() + 1e-9;
        }
        std::printf("\n");
        sum_a += totals[0];
        sum_s += totals[1];
        sum_c += totals[2];
        a_always_slowest &=
            totals[0] >= totals[1] && totals[0] >= totals[2];
    }

    const double n = static_cast<double>(allTestCases.size());
    std::printf("\naverages: A=%.3f ms, S=%.3f ms, C=%.3f ms "
                "(C vs A: %+.1f%%, C vs S: %+.1f%%)\n",
                sum_a / n, sum_s / n, sum_c / n,
                100.0 * (sum_c - sum_a) / sum_a,
                100.0 * (sum_c - sum_s) / sum_s);

    std::printf("\nShape checks vs. paper Fig. 10:\n");
    checker.check(all_under_4ms,
                  "all engines meet the < 4 ms real-time bound");
    checker.check(a_always_slowest,
                  "the aggregator engine has the largest delay in "
                  "every case");
    checker.check(sum_c < sum_a,
                  "cross-end reduces average delay vs the aggregator "
                  "engine (paper: -60.8%)");
    checker.check(sum_c < sum_s,
                  "cross-end reduces average delay vs the sensor "
                  "node engine (paper: -15.6%)");
    checker.check(sim_matches,
                  "event-driven simulation confirms the analytic "
                  "critical path (radio contention mild)");
    return checker.finish("bench_fig10_delay");
}
