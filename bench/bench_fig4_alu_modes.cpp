/**
 * @file
 * Regenerates paper Fig. 4: energy characterization (pJ/event) of
 * the serial, parallel and pipeline ALU modes for every component of
 * the generic classification engine at 90 nm, with the optimal mode
 * starred. Shape checks: the paper's red-star pattern (serial for
 * most components, pipeline for Std and DWT), near-ties for the
 * simple comparison cells, and the ~two-orders-of-magnitude parallel
 * DWT penalty.
 */

#include <cstdio>

#include "bench_common.hh"
#include "hw/characterize.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    const Technology &tech = Technology::get(ProcessNode::Tsmc90);
    const auto rows = characterizeAllComponents(tech);

    std::printf("Fig. 4: ALU-mode energy characterization at 90nm "
                "(pJ/event, * = optimal mode)\n\n");
    std::printf("%-8s %14s %16s %14s\n", "module", "serial",
                "parallel", "pipeline");
    for (const auto &row : rows) {
        const auto star = [&](AluMode mode) {
            return row.bestMode == mode ? '*' : ' ';
        };
        std::printf("%-8s %13.0f%c %15.0f%c %13.0f%c\n",
                    componentName(row.kind).c_str(),
                    row.mode(AluMode::Serial).energy.pj(),
                    star(AluMode::Serial),
                    row.mode(AluMode::Parallel).energy.pj(),
                    star(AluMode::Parallel),
                    row.mode(AluMode::Pipeline).energy.pj(),
                    star(AluMode::Pipeline));
    }

    std::printf("\nShape checks vs. paper Fig. 4:\n");
    ShapeChecker checker;
    const std::map<ComponentKind, AluMode> stars = {
        {ComponentKind::Max, AluMode::Serial},
        {ComponentKind::Min, AluMode::Serial},
        {ComponentKind::Mean, AluMode::Serial},
        {ComponentKind::Var, AluMode::Serial},
        {ComponentKind::Std, AluMode::Pipeline},
        {ComponentKind::Czero, AluMode::Serial},
        {ComponentKind::Skew, AluMode::Serial},
        {ComponentKind::Kurt, AluMode::Serial},
        {ComponentKind::Dwt, AluMode::Pipeline},
        {ComponentKind::Svm, AluMode::Serial},
        {ComponentKind::Fusion, AluMode::Serial},
    };
    for (const auto &row : rows) {
        checker.check(row.bestMode == stars.at(row.kind),
                      componentName(row.kind) + " optimal mode is " +
                          aluModeName(stars.at(row.kind)));
        checker.check(row.bestMode != AluMode::Parallel,
                      componentName(row.kind) +
                          " parallel mode is never optimal");
    }
    for (ComponentKind kind :
         {ComponentKind::Max, ComponentKind::Min, ComponentKind::Czero}) {
        const auto &row = rows[static_cast<size_t>(kind)];
        const double ratio = row.mode(AluMode::Pipeline).energy /
                             row.mode(AluMode::Serial).energy;
        checker.check(ratio > 0.8 && ratio < 1.25,
                      componentName(kind) +
                          " serial and pipeline are similar");
    }
    {
        const auto &dwt =
            rows[static_cast<size_t>(ComponentKind::Dwt)];
        const double ratio = dwt.mode(AluMode::Parallel).energy /
                             dwt.mode(AluMode::Serial).energy;
        checker.check(ratio > 30.0,
                      "parallel DWT is ~2 orders of magnitude above "
                      "serial (x" + std::to_string(ratio) + ")");
    }
    return checker.finish("bench_fig4_alu_modes");
}
