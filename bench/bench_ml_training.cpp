/**
 * @file
 * End-to-end training speed of the fast ML path. Replicates the
 * pre-optimization serial pipeline (vector-of-vectors rows, pairwise
 * kernel matrix, SMO recomputing decision sums from scratch,
 * per-sample projection and inference) and times it against the
 * current path (flat matrices, batched Gram, error-cached SMO, batch
 * inference) on the largest Table-1 case. Both paths train the full
 * 100-candidate ensemble on identical data with identical subspace
 * draws, then classify the held-out test split.
 *
 * The shape check gates the optimization: the fast path must be at
 * least 3x faster end to end, and both paths must produce a working
 * classifier on the held-out data.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "common/random.hh"
#include "ml/crossval.hh"
#include "ml/random_subspace.hh"

using namespace xpro;
using namespace xpro::bench;

namespace naive
{

/** Pre-optimization dataset layout: one heap vector per row. */
struct Data
{
    std::vector<std::vector<double>> rows;
    std::vector<int> labels;

    size_t size() const { return rows.size(); }
};

double
kernelAt(const Kernel &kernel, const std::vector<double> &x,
         const std::vector<double> &z)
{
    if (kernel.kind == KernelKind::Linear) {
        double acc = 0.0;
        for (size_t i = 0; i < x.size(); ++i)
            acc += x[i] * z[i];
        return acc;
    }
    double acc = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - z[i];
        acc += d * d;
    }
    return std::exp(-kernel.gamma * acc);
}

/** Pairwise dense kernel matrix, as before the batched Gram path. */
class KernelMatrix
{
  public:
    KernelMatrix(const Data &data, const Kernel &kernel)
        : _n(data.size()), _values(_n * _n)
    {
        for (size_t i = 0; i < _n; ++i) {
            for (size_t j = i; j < _n; ++j) {
                const double k =
                    kernelAt(kernel, data.rows[i], data.rows[j]);
                _values[i * _n + j] = k;
                _values[j * _n + i] = k;
            }
        }
    }

    double at(size_t i, size_t j) const { return _values[i * _n + j]; }

  private:
    size_t _n;
    std::vector<double> _values;
};

/** Pre-optimization trained SVM: per-sample kernel inference. */
struct Svm
{
    Kernel kernel;
    double bias = 0.0;
    std::vector<std::vector<double>> supportVectors;
    std::vector<double> weights;

    double
    decision(const std::vector<double> &x) const
    {
        double acc = bias;
        for (size_t k = 0; k < supportVectors.size(); ++k)
            acc += weights[k] * kernelAt(kernel, supportVectors[k], x);
        return acc;
    }

    int predict(const std::vector<double> &x) const
    {
        return decision(x) >= 0.0 ? 1 : -1;
    }
};

/**
 * The seed repo's SMO loop: no cached errors, every KKT check and
 * every second-multiplier pick recomputes the decision sum over all
 * active multipliers.
 */
Svm
trainSvm(const Data &data, const SvmConfig &config)
{
    const size_t n = data.size();
    const KernelMatrix gram(data, config.kernel);

    std::vector<double> alpha(n, 0.0);
    double bias = 0.0;
    Rng rng(0xC0FFEE);

    const auto decision_on_train = [&](size_t i) {
        double acc = bias;
        for (size_t k = 0; k < n; ++k) {
            if (alpha[k] > 0.0)
                acc += alpha[k] * data.labels[k] * gram.at(k, i);
        }
        return acc;
    };

    size_t quiet_passes = 0;
    size_t iterations = 0;
    while (quiet_passes < config.maxPassesWithoutChange &&
           iterations < config.maxIterations) {
        ++iterations;
        size_t changed = 0;
        for (size_t i = 0; i < n; ++i) {
            const double error_i =
                decision_on_train(i) - data.labels[i];
            const bool violates =
                (data.labels[i] * error_i < -config.tolerance &&
                 alpha[i] < config.c) ||
                (data.labels[i] * error_i > config.tolerance &&
                 alpha[i] > 0.0);
            if (!violates)
                continue;

            size_t j = static_cast<size_t>(rng.below(n - 1));
            if (j >= i)
                ++j;
            const double error_j =
                decision_on_train(j) - data.labels[j];

            const double alpha_i_old = alpha[i];
            const double alpha_j_old = alpha[j];

            double low;
            double high;
            if (data.labels[i] != data.labels[j]) {
                low = std::max(0.0, alpha[j] - alpha[i]);
                high = std::min(config.c,
                                config.c + alpha[j] - alpha[i]);
            } else {
                low = std::max(0.0, alpha[i] + alpha[j] - config.c);
                high = std::min(config.c, alpha[i] + alpha[j]);
            }
            if (high - low < 1e-12)
                continue;

            const double eta = 2.0 * gram.at(i, j) - gram.at(i, i) -
                               gram.at(j, j);
            if (eta >= -1e-12)
                continue;

            double alpha_j_new =
                alpha_j_old -
                data.labels[j] * (error_i - error_j) / eta;
            alpha_j_new = std::clamp(alpha_j_new, low, high);
            if (std::fabs(alpha_j_new - alpha_j_old) < 1e-7)
                continue;

            const double alpha_i_new =
                alpha_i_old + data.labels[i] * data.labels[j] *
                                  (alpha_j_old - alpha_j_new);
            alpha[i] = alpha_i_new;
            alpha[j] = alpha_j_new;

            const double b1 =
                bias - error_i -
                data.labels[i] * (alpha_i_new - alpha_i_old) *
                    gram.at(i, i) -
                data.labels[j] * (alpha_j_new - alpha_j_old) *
                    gram.at(i, j);
            const double b2 =
                bias - error_j -
                data.labels[i] * (alpha_i_new - alpha_i_old) *
                    gram.at(i, j) -
                data.labels[j] * (alpha_j_new - alpha_j_old) *
                    gram.at(j, j);
            if (alpha_i_new > 0.0 && alpha_i_new < config.c) {
                bias = b1;
            } else if (alpha_j_new > 0.0 && alpha_j_new < config.c) {
                bias = b2;
            } else {
                bias = 0.5 * (b1 + b2);
            }
            ++changed;
        }
        quiet_passes = changed == 0 ? quiet_passes + 1 : 0;
    }

    Svm model;
    model.kernel = config.kernel;
    model.bias = bias;
    for (size_t i = 0; i < n; ++i) {
        if (alpha[i] > 1e-9) {
            model.supportVectors.push_back(data.rows[i]);
            model.weights.push_back(alpha[i] * data.labels[i]);
        }
    }
    return model;
}

std::vector<double>
project(const std::vector<double> &row,
        const std::vector<size_t> &indices)
{
    std::vector<double> out;
    out.reserve(indices.size());
    for (size_t idx : indices)
        out.push_back(row[idx]);
    return out;
}

struct Base
{
    std::vector<size_t> featureIndices;
    Svm model;
    double validationAccuracy = 0.0;
};

struct Ensemble
{
    std::vector<Base> bases;
    std::vector<double> weights;
    double weightBias = 0.0;

    int
    predict(const std::vector<double> &full_row) const
    {
        double acc = weightBias;
        for (size_t m = 0; m < bases.size(); ++m) {
            const int vote = bases[m].model.predict(
                project(full_row, bases[m].featureIndices));
            acc += weights[m] * static_cast<double>(vote);
        }
        return acc >= 0.0 ? 1 : -1;
    }
};

/** The seed repo's serial ensemble training loop. */
Ensemble
trainEnsemble(const Data &data, const RandomSubspaceConfig &config)
{
    const size_t pool = data.rows.front().size();
    Rng rng(config.seed);
    const Split split = stratifiedSplit(data.labels, 0.8, rng);

    const auto gather = [&](const std::vector<size_t> &indices) {
        Data out;
        out.rows.reserve(indices.size());
        for (size_t idx : indices) {
            out.rows.push_back(data.rows[idx]);
            out.labels.push_back(data.labels[idx]);
        }
        return out;
    };
    const Data fit_set = gather(split.trainIndices);
    const Data val_set = gather(split.testIndices);

    std::vector<Base> candidates;
    candidates.reserve(config.candidates);
    for (size_t c = 0; c < config.candidates; ++c) {
        Base base;
        base.featureIndices =
            rng.sampleWithoutReplacement(pool,
                                         config.subspaceDimension);
        std::sort(base.featureIndices.begin(),
                  base.featureIndices.end());

        Data projected;
        projected.labels = fit_set.labels;
        projected.rows.reserve(fit_set.size());
        for (const auto &row : fit_set.rows)
            projected.rows.push_back(
                project(row, base.featureIndices));
        base.model = trainSvm(projected, config.svm);

        size_t correct = 0;
        for (size_t i = 0; i < val_set.size(); ++i) {
            const int vote = base.model.predict(
                project(val_set.rows[i], base.featureIndices));
            correct += vote == val_set.labels[i];
        }
        base.validationAccuracy =
            val_set.size() > 0
                ? static_cast<double>(correct) /
                      static_cast<double>(val_set.size())
                : 0.5;
        candidates.push_back(std::move(base));
    }

    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(std::lround(
               config.keepFraction *
               static_cast<double>(config.candidates))));
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const Base &a, const Base &b) {
                         return a.validationAccuracy >
                                b.validationAccuracy;
                     });
    candidates.resize(std::min(keep, candidates.size()));

    Ensemble ensemble;
    ensemble.bases = std::move(candidates);

    const size_t members = ensemble.bases.size();
    Matrix design(data.size(), members + 1);
    Matrix target(data.size(), 1);
    for (size_t i = 0; i < data.size(); ++i) {
        for (size_t m = 0; m < members; ++m) {
            const Base &base = ensemble.bases[m];
            const int vote = base.model.predict(
                project(data.rows[i], base.featureIndices));
            design(i, m) = static_cast<double>(vote);
        }
        design(i, members) = 1.0;
        target(i, 0) = static_cast<double>(data.labels[i]);
    }
    const Matrix weights =
        Matrix::leastSquares(design, target, config.fusionRidge);
    ensemble.weights.resize(members);
    for (size_t m = 0; m < members; ++m)
        ensemble.weights[m] = weights(m, 0);
    ensemble.weightBias = weights(members, 0);
    return ensemble;
}

} // namespace naive

int
main()
{
    std::printf("ML training speed: serial seed path vs fast path\n");
    std::printf("================================================\n\n");

    // Largest Table-1 case: M1 (EMGHandLat, 1200 segments).
    const SignalDataset dataset = makeTestCase(TestCase::M1);
    const TrainingOptions options = paperTraining();
    const EngineConfig engine = paperConfig();

    // Shared preparation (feature extraction, split, scaling) so the
    // timed region isolates classifier training + inference.
    FeatureExtractor extractor(engine.wavelet);
    FlatMatrix raw_rows;
    std::vector<int> labels;
    raw_rows.reserve(dataset.size());
    for (const Segment &segment : dataset.segments) {
        raw_rows.push_back(extractor.extractAll(segment.samples));
        labels.push_back(segment.label);
    }
    Rng rng(options.seed);
    const Split split =
        stratifiedSplit(labels, options.trainFraction, rng);
    std::vector<size_t> train_idx = split.trainIndices;
    if (options.maxTrainingSegments > 0 &&
        train_idx.size() > options.maxTrainingSegments)
        train_idx.resize(options.maxTrainingSegments);

    LabeledData train;
    train.rows = FlatMatrix(0, raw_rows.cols());
    for (size_t idx : train_idx) {
        train.rows.push_back(raw_rows.row(idx));
        train.labels.push_back(labels[idx]);
    }
    LabeledData test;
    test.rows = FlatMatrix(0, raw_rows.cols());
    for (size_t idx : split.testIndices) {
        test.rows.push_back(raw_rows.row(idx));
        test.labels.push_back(labels[idx]);
    }
    FeatureScaler scaler;
    scaler.fit(train.rows);
    scaler.transformRowsInPlace(train.rows);
    scaler.transformRowsInPlace(test.rows);

    naive::Data naive_train;
    naive::Data naive_test;
    for (size_t i = 0; i < train.size(); ++i) {
        naive_train.rows.push_back(train.rows.row(i).toVector());
        naive_train.labels.push_back(train.labels[i]);
    }
    for (size_t i = 0; i < test.size(); ++i) {
        naive_test.rows.push_back(test.rows.row(i).toVector());
        naive_test.labels.push_back(test.labels[i]);
    }

    RandomSubspaceConfig subspace = engine.subspace;
    subspace.seed = options.seed ^ 0xABCDEF;

    std::printf("case %s: %zu train / %zu test segments, "
                "%zu-feature pool, %zu candidates\n\n",
                dataset.symbol.c_str(), train.size(), test.size(),
                train.dimension(), subspace.candidates);

    // Cold serial baseline: the seed repo's exact code path.
    SteadyTimer naive_timer;
    const naive::Ensemble naive_model =
        naive::trainEnsemble(naive_train, subspace);
    size_t naive_correct = 0;
    for (size_t i = 0; i < naive_test.size(); ++i)
        naive_correct += naive_model.predict(naive_test.rows[i]) ==
                         naive_test.labels[i];
    const double naive_ms = naive_timer.ms();
    const double naive_accuracy =
        static_cast<double>(naive_correct) /
        static_cast<double>(naive_test.size());

    // Fast path: batched Gram + error-cached SMO + batch inference,
    // all workers the machine has (identical results at any count).
    RandomSubspaceConfig fast = subspace;
    fast.workers = 0;
    SteadyTimer fast_timer;
    const RandomSubspace model = RandomSubspace::train(train, fast);
    const double fast_accuracy = model.accuracy(test);
    const double fast_ms = fast_timer.ms();

    const double speedup = naive_ms / fast_ms;
    std::printf("serial seed path : %8.1f ms  (%.1f%% held-out)\n",
                naive_ms, 100.0 * naive_accuracy);
    std::printf("fast path        : %8.1f ms  (%.1f%% held-out)\n",
                fast_ms, 100.0 * fast_accuracy);
    std::printf("speedup          : %8.2fx\n\n", speedup);

    ShapeChecker checker;
    checker.metric("serial_ms", naive_ms);
    checker.metric("fast_ms", fast_ms);
    checker.metric("speedup", speedup);
    checker.metric("serial_accuracy", naive_accuracy);
    checker.metric("fast_accuracy", fast_accuracy);
    // Work unit: one training segment through the fast path.
    checker.throughput(train.size(), fast_ms / 1e3);
    checker.check(speedup >= 3.0,
                  "fast path is at least 3x faster end to end");
    checker.check(fast_accuracy >= 0.7,
                  "fast path classifier works on held-out data");
    checker.check(std::fabs(fast_accuracy - naive_accuracy) <= 0.1,
                  "fast and serial paths reach comparable accuracy");
    return checker.finish("bench_ml_training");
}
