/**
 * @file
 * Population-scale gate (DESIGN.md §16): can one process sustain
 * event traffic from a million simulated users?
 *
 * Three measurements:
 *
 *  A. Baseline: the detailed per-cell fleet simulator (one global
 *     event queue, one shared radio arbitrated FCFS over every
 *     node) at 10k nodes — the pre-population architecture, whose
 *     O(pending) arbitration scan goes quadratic at this size.
 *  B. The population path at the same 10k nodes: SoA node slabs, a
 *     sharded hierarchical time wheel, and per-cell radio
 *     arbitration through the tier hierarchy. Gated at >= 10x the
 *     baseline's events/sec, and byte-identical reports at every
 *     shard/worker combination.
 *  C. The population path at 1,000,000 nodes: sustained events/sec
 *     (the shared "events_per_sec" JSON key) and peak_rss_mb.
 *
 * Events are counted as completed node-events (sensed, uplinked,
 * delivered through the gateway) for both paths, so the comparison
 * is work-for-work, not loop-iterations-for-loop-iterations.
 */

#include <cstdio>
#include <cstdlib>

#include "bench_common.hh"
#include "core/placement.hh"
#include "core/topology.hh"
#include "fleet/fleet.hh"
#include "fleet/radio_sched.hh"
#include "wireless/link.hh"

using namespace xpro;
using namespace xpro::bench;

namespace
{

/**
 * A miniature source -> feature -> svm -> fusion chain with the
 * same cost scale as the population path's synthetic archetypes, so
 * the baseline simulates comparable per-event work. trivialCut()
 * places the feature in the sensor and the classifiers in the
 * aggregator: every event crosses the shared radio once.
 */
EngineTopology
miniChain(double feature_nj, double sensor_us, double agg_us)
{
    EngineTopology topo;
    topo.graph = DataflowGraph(1024);
    topo.cells.resize(1); // source
    topo.segmentLength = 32;
    const auto add = [&](const char *name, ComponentKind kind) {
        DataflowNode node;
        node.name = name;
        node.outputBits = 32;
        node.costs.sensorEnergy = Energy::nanos(feature_nj);
        node.costs.aggregatorEnergy =
            Energy::nanos(feature_nj / 4.0);
        node.costs.sensorDelay = Time::micros(sensor_us);
        node.costs.aggregatorDelay = Time::micros(agg_us);
        const size_t id = topo.graph.addCell(node);
        CellInfo info;
        info.kind = kind;
        topo.cells.push_back(info);
        return id;
    };
    const size_t f = add("feature", ComponentKind::Var);
    const size_t s = add("svm", ComponentKind::Svm);
    const size_t z = add("fusion", ComponentKind::Fusion);
    topo.graph.addEdge(DataflowGraph::sourceId, f, 0);
    topo.graph.addEdge(f, s, 0);
    topo.graph.addEdge(s, z, 0);
    topo.fusionNode = z;
    topo.cells[z].kind = ComponentKind::Fusion;
    return topo;
}

/** Baseline fleet: @p nodes members cycling six chain variants at
 *  the synthetic archetypes' event rates. */
std::vector<FleetMember>
baselineMembers(const std::vector<EngineTopology> &chains,
                size_t nodes)
{
    const double rates[6] = {2.0, 1.0, 4.0, 2.0, 8.0, 1.0};
    std::vector<FleetMember> members;
    members.reserve(nodes);
    for (size_t n = 0; n < nodes; ++n) {
        FleetMember member;
        member.topology = chains[n % chains.size()];
        member.placement =
            Placement::trivialCut(member.topology);
        member.eventsPerSecond = rates[n % 6];
        members.push_back(std::move(member));
    }
    return members;
}

PopulationFleetConfig
populationConfig(uint64_t nodes, size_t shards, size_t workers)
{
    PopulationFleetConfig config;
    config.nodes = nodes;
    config.shards = shards;
    config.workers = workers;
    config.eventsPerNode = 2;
    return config;
}

} // namespace

int
main()
{
    ShapeChecker checker;
    // XPRO_BENCH_SMOKE=1: CI's JSON-shape check runs a reduced
    // fleet and skips the timing-sensitive speedup gates (the
    // shapes are too small for stable rates); the structural
    // checks — event accounting, slab size, byte-identity — hold
    // at any scale and stay on.
    const bool smoke = std::getenv("XPRO_BENCH_SMOKE") != nullptr;
    const size_t kBaselineNodes = smoke ? 1000 : 10000;
    const size_t kMillionNodes = smoke ? 20000 : 1000000;
    constexpr uint64_t kEventsPerNode = 2;

    std::vector<EngineTopology> chains;
    for (double nj : {90.0, 70.0, 50.0, 80.0, 40.0, 60.0})
        chains.push_back(miniChain(nj * 1000.0, 1500.0, 300.0));
    const WirelessLink link(transceiver(WirelessModel::Model2));
    const FcfsArbiter fcfs;

    // Warm both paths (page in code, grow arenas/slot vectors).
    simulateFleet(baselineMembers(chains, 64), link, fcfs,
                  kEventsPerNode);
    runPopulationFleet(populationConfig(1024, 4, 1));

    std::printf("== A: detailed per-cell path at %zu nodes "
                "(pre-population architecture) ==\n\n",
                kBaselineNodes);
    const std::vector<FleetMember> members =
        baselineMembers(chains, kBaselineNodes);
    SteadyTimer base_timer;
    const FleetSimResult base =
        simulateFleet(members, link, fcfs, kEventsPerNode);
    const double base_s = base_timer.seconds();
    const size_t base_events = kBaselineNodes * kEventsPerNode;
    const double base_rate =
        static_cast<double>(base_events) / base_s;
    std::printf("  %zu events in %.2f s -> %.0f events/s "
                "(%zu radio transfers)\n\n",
                base_events, base_s, base_rate, base.transfers);

    std::printf("== B: population path at the same %zu nodes "
                "==\n\n",
                kBaselineNodes);
    SteadyTimer pop_timer;
    const PopulationFleetResult pop10k =
        runPopulationFleet(populationConfig(kBaselineNodes, 8, 1));
    const double pop_s = pop_timer.seconds();
    const size_t pop_events = pop10k.report.totalEvents;
    const double pop_rate =
        static_cast<double>(pop_events) / pop_s;
    const double speedup = pop_rate / base_rate;
    std::printf("  %zu events in %.3f s -> %.0f events/s "
                "(%.1fx the detailed path)\n",
                pop_events, pop_s, pop_rate, speedup);
    std::printf("  %zu slab bytes/node, %zu effective shards\n\n",
                pop10k.bytesPerNode, pop10k.effectiveShards);

    checker.check(pop_events == base_events,
                  "population path completes the same event count "
                  "the baseline simulated");
    if (!smoke) {
        checker.check(speedup >= 10.0,
                      "population path >= 10x the detailed path's "
                      "events/sec at 10k nodes");
    }
    checker.check(NodeSlabs::bytesPerNode() <= 64,
                  "node state costs tens of bytes (<= 64)");

    // Byte-identity: the report must be a pure function of the
    // configuration — shards and workers change only wall-clock.
    const std::string reference =
        pop10k.report.serialize();
    bool identical = true;
    for (size_t shards : {1, 4, 16}) {
        for (size_t workers : {1, 4}) {
            const PopulationFleetResult run = runPopulationFleet(
                populationConfig(kBaselineNodes, shards, workers));
            identical &= run.report.serialize() == reference;
        }
    }
    checker.check(identical,
                  "report byte-identical across shards {1,4,16} x "
                  "workers {1,4}");

    std::printf("== C: population path at %zu nodes ==\n\n",
                kMillionNodes);
    PopulationFleetConfig million =
        populationConfig(kMillionNodes, 16, 0);
    // Provision the cloud tier for the fleet's ~3M events/s offered
    // load; the default quota models a smaller deployment and would
    // throttle most of the traffic.
    million.tiers.cloudEventsPerSec = 5000000;
    SteadyTimer million_timer;
    const PopulationFleetResult big = runPopulationFleet(million);
    const double million_s = million_timer.seconds();
    const size_t million_events = big.report.totalEvents;
    const double million_rate =
        static_cast<double>(million_events) / million_s;
    std::printf("  %zu events in %.2f s -> %.0f events/s "
                "(%llu wheel items, %zu shards)\n",
                million_events, million_s, million_rate,
                static_cast<unsigned long long>(
                    big.simulatedEvents),
                big.effectiveShards);
    std::printf("  peak rss %.0f MiB\n\n", peakRssMb());

    const uint64_t offered = kMillionNodes * kEventsPerNode;
    checker.check(million_events >=
                      static_cast<size_t>(offered * 95 / 100),
                  "1M-node run delivers >= 95% of offered events "
                  "(cloud tier provisioned)");
    if (!smoke) {
        checker.check(million_rate >= base_rate * 10.0,
                      "1M-node sustained rate still >= 10x the "
                      "10k-node detailed path");
    }
    checker.check(peakRssMb() < 1024.0,
                  "1M nodes fit in < 1 GiB peak RSS");

    checker.metric("baseline_events_per_sec", base_rate);
    checker.metric("speedup_10k", speedup);
    checker.metric("bytes_per_node",
                   static_cast<double>(pop10k.bytesPerNode));
    checker.metric("million_events",
                   static_cast<double>(million_events));
    checker.throughput(million_events, million_s);
    return checker.finish("bench_fleet_million");
}
