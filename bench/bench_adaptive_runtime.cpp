/**
 * @file
 * Runtime-adaptive controller bench: lifetime under a nonstationary
 * day on one static cut versus the online re-partitioning
 * controller.
 *
 * The scenario is the seeded 24-hour trace (control/trace): an
 * overnight event-rate lull, a daytime activity step, and a few
 * multi-hour bursty-channel episodes. A static design is stuck with
 * one answer for the whole day; the controller re-prices the cut at
 * every window boundary from observed telemetry and migrates cells
 * across the link when drift makes a different cut cheaper. The
 * gated claims:
 *
 *  - adaptive lifetime beats BOTH static extremes (all-in-sensor
 *    and all-in-aggregator) by >= 10% on the day trace;
 *  - the controller actually re-partitions (the trace's channel
 *    episodes flip the optimal cut), with a bounded handover bill;
 *  - every re-solve after the initial design reuses the warm
 *    network: coldSolves == 1, warmSolves >= 1;
 *  - the decision trace is deterministic: two runs serialize to
 *    identical bytes.
 */

#include <cstdio>
#include <string>

#include "bench_common.hh"
#include "control/adaptive_sim.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    std::printf("XPro adaptive-runtime bench: static cuts vs the "
                "online controller\n");
    std::printf("(test case C1, seeded 24 h nonstationary trace, "
                "40 mAh sensor cell)\n\n");

    CaseLibrary library;
    const EngineConfig config = paperConfig();

    SteadyTimer design_timer;
    const EngineTopology topo = library.topology(TestCase::C1, config);
    const WirelessLink link(transceiver(config.wireless));
    const double design_s = design_timer.seconds();

    const NonstationaryTrace day = NonstationaryTrace::day(2017);
    AdaptiveRunConfig run;
    run.sensor.process = config.process;

    SteadyTimer adaptive_timer;
    const LifetimeResult adaptive =
        adaptiveLifetime(topo, link, day, run);
    const double adaptive_s = adaptive_timer.seconds();

    SteadyTimer static_timer;
    const LifetimeResult in_sensor = staticLifetime(
        topo, Placement::allInSensor(topo), link, day, run);
    const LifetimeResult in_aggregator = staticLifetime(
        topo, Placement::allInAggregator(topo), link, day, run);
    const double static_s = static_timer.seconds();

    const ControlReport &control = adaptive.control;
    std::printf("  %-24s %10.1f h  (%zu trace passes)\n",
                "static all-in-sensor", in_sensor.lifetime.hr(),
                in_sensor.tracePasses);
    std::printf("  %-24s %10.1f h  (%zu trace passes)\n",
                "static all-in-aggregator",
                in_aggregator.lifetime.hr(),
                in_aggregator.tracePasses);
    std::printf("  %-24s %10.1f h  (%zu trace passes)\n", "adaptive",
                adaptive.lifetime.hr(), adaptive.tracePasses);
    std::printf("\n  controller: %zu windows, %zu repartitions, "
                "%zu hysteresis holds, %zu dwell holds\n",
                control.windows, control.repartitions,
                control.hysteresisHolds, control.dwellHolds);
    std::printf("  solves: %zu cold + %zu warm; handover bill "
                "%.1f uJ / %.1f ms on air\n",
                control.coldSolves, control.warmSolves,
                control.handoverTotalUj, control.handoverTotalMs);
    std::printf("  host: design %.2f s, adaptive %.2f s, "
                "static pair %.2f s\n\n",
                design_s, adaptive_s, static_s);

    const double vs_sensor =
        adaptive.lifetime.hr() / in_sensor.lifetime.hr();
    const double vs_aggregator =
        adaptive.lifetime.hr() / in_aggregator.lifetime.hr();

    ShapeChecker checker;
    checker.check(vs_sensor >= 1.10,
                  "adaptive lifetime beats static all-in-sensor by "
                  ">= 10% (got " +
                      std::to_string(vs_sensor) + "x)");
    checker.check(vs_aggregator >= 1.10,
                  "adaptive lifetime beats static all-in-aggregator "
                  "by >= 10% (got " +
                      std::to_string(vs_aggregator) + "x)");
    checker.check(control.repartitions > 0,
                  "the channel episodes trigger re-partitions");
    checker.check(control.coldSolves == 1,
                  "exactly one cold solve; every re-partition "
                  "re-solves warm");
    checker.check(control.warmSolves >= 1,
                  "warm re-solves happened");

    // Decision-trace determinism: an identical run must reproduce
    // the trace byte for byte.
    const LifetimeResult again = adaptiveLifetime(topo, link, day, run);
    checker.check(again.control.serialize() == control.serialize(),
                  "decision trace is byte-identical across runs");

    checker.metric("adaptive_lifetime_h", adaptive.lifetime.hr());
    checker.metric("static_sensor_h", in_sensor.lifetime.hr());
    checker.metric("static_aggregator_h",
                   in_aggregator.lifetime.hr());
    checker.metric("gain_vs_sensor", vs_sensor);
    checker.metric("gain_vs_aggregator", vs_aggregator);
    checker.metric("repartitions",
                   static_cast<double>(control.repartitions));
    checker.metric("cold_solves",
                   static_cast<double>(control.coldSolves));
    checker.metric("warm_solves",
                   static_cast<double>(control.warmSolves));
    checker.metric("handover_total_uj", control.handoverTotalUj);
    checker.metric("design_s", design_s);
    checker.metric("adaptive_s", adaptive_s);
    checker.throughput(adaptive.events, adaptive_s);

    return checker.finish("bench_adaptive_runtime");
}
