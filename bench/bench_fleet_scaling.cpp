/**
 * @file
 * Fleet scaling bench, two questions the paper never had to ask:
 *
 *  A. Design throughput: how much faster does the per-node design
 *     phase (training + generator) get when the fleet's worker pool
 *     grows? Reported as wall-clock time AND as the pool's
 *     load-balancing speedup (total task CPU / busiest worker's
 *     CPU) — the latter is what wall clock converges to once the
 *     host has enough free cores, and is the gated figure so the
 *     bench is meaningful on throttled CI hosts with one or two
 *     cores. The per-node cuts and the fleet report must be
 *     identical at every worker count.
 *
 *  B. Shared-channel pressure: deadline-miss rate and radio
 *     occupancy as the fleet grows on one aggregator. Event rates
 *     are scaled up (eventRateScale) to stress the channel the way
 *     higher-rate sensors would, under both arbitration policies.
 */

#include <cstdio>
#include <thread>

#include "bench_common.hh"
#include "fleet/fleet.hh"

using namespace xpro;
using namespace xpro::bench;

namespace
{

FleetConfig
designFleetConfig(size_t workers)
{
    FleetConfig config;
    config.nodes = heterogeneousFleet(6);
    config.workers = workers;
    config.eventsPerNode = 4;
    return config;
}

/** Reduced training budget so the size sweep stays quick. */
FleetConfig
sweepFleetConfig(size_t nodes, RadioPolicy policy)
{
    FleetConfig config;
    config.nodes = heterogeneousFleet(nodes);
    for (FleetNodeSpec &node : config.nodes) {
        node.subspaceCandidates = 8;
        node.maxTrainingSegments = 80;
    }
    config.policy = policy;
    config.workers = 2;
    config.eventsPerNode = 6;
    // Pretend every sensor streams 600x faster than its dataset:
    // at paper rates the 2 Mbps channel is never the bottleneck
    // (bench_fig10), so contention effects only become visible
    // under pressure.
    config.eventRateScale = 600.0;
    return config;
}

double
missRate(const FleetReport &report)
{
    return static_cast<double>(report.totalDeadlineMisses) /
           static_cast<double>(report.totalEvents);
}

} // namespace

int
main()
{
    ShapeChecker checker;

    std::printf("== A: design-phase scaling on the 6-case fleet "
                "==\n\n");
    std::printf("%8s %10s %12s %12s %10s\n", "workers", "wall (s)",
                "cpu sum (s)", "busiest (s)", "sched x");

    const size_t worker_counts[] = {1, 2, 4};
    std::vector<FleetResult> runs;
    for (size_t workers : worker_counts) {
        runs.push_back(runFleet(designFleetConfig(workers)));
        const FleetResult &run = runs.back();
        std::printf("%8zu %10.2f %12.2f %12.2f %9.2fx\n", workers,
                    run.designWall.sec(), run.designWork.sec(),
                    run.designMakespan.sec(),
                    run.designWork.sec() /
                        run.designMakespan.sec());
    }

    const FleetResult &serial = runs.front();
    const FleetResult &wide = runs.back();
    // The gated speedup: one worker's total work against the
    // 4-worker run's busiest worker. Pure load balancing, immune to
    // how many physical cores this host happens to have.
    const double sched_speedup =
        serial.designWork.sec() / wide.designMakespan.sec();
    const double wall_speedup =
        serial.designWall.sec() / wide.designWall.sec();
    const unsigned hw_threads = std::thread::hardware_concurrency();
    std::printf("\n4-worker speedup: %.2fx scheduling, %.2fx "
                "wall-clock (%u hardware threads)\n\n",
                sched_speedup, wall_speedup, hw_threads);

    checker.check(sched_speedup >= 2.0,
                  "design phase scales >= 2x at 4 workers "
                  "(load-balancing speedup)");
    if (hw_threads >= 4) {
        checker.check(wall_speedup >= 1.5,
                      "wall-clock speedup materializes on >= 4 "
                      "hardware threads");
    } else {
        std::printf("  [SKIP] wall-clock speedup check (%u "
                    "hardware thread(s) < 4)\n",
                    hw_threads);
    }

    bool cuts_identical = true;
    for (const FleetResult &run : runs) {
        for (size_t n = 0; n < run.nodes.size(); ++n) {
            const Placement &a = serial.nodes[n].admission.placement;
            const Placement &b = run.nodes[n].admission.placement;
            for (size_t u = 0; u < a.size(); ++u)
                cuts_identical &= a.inSensor(u) == b.inSensor(u);
        }
    }
    checker.check(cuts_identical,
                  "per-node cuts identical at every worker count");
    checker.check(serial.report.serialize() ==
                          runs[1].report.serialize() &&
                      serial.report.serialize() ==
                          wide.report.serialize(),
                  "fleet report byte-identical at every worker "
                  "count");

    std::printf("\n== B: deadline misses vs fleet size (600x "
                "event-rate stress) ==\n\n");
    std::printf("%6s %8s %12s %12s %12s %12s\n", "nodes", "policy",
                "miss rate", "radio occ", "agg util",
                "worst lat ms");

    const size_t sizes[] = {2, 4, 8};
    std::vector<double> fcfs_miss, fcfs_occupancy;
    double tdma_large_miss = 0.0;
    size_t stress_events = 0;
    SteadyTimer stress_timer;
    for (size_t nodes : sizes) {
        for (RadioPolicy policy :
             {RadioPolicy::Fcfs, RadioPolicy::Tdma}) {
            const FleetResult run =
                runFleet(sweepFleetConfig(nodes, policy));
            stress_events += nodes * 6; // eventsPerNode above
            double worst = 0.0;
            for (const FleetNodeReportRow &row : run.report.rows)
                worst = std::max(worst, row.worstLatencyMs);
            std::printf("%6zu %8s %11.1f%% %11.1f%% %11.1f%% "
                        "%12.3f\n",
                        nodes, run.report.policy.c_str(),
                        100.0 * missRate(run.report),
                        100.0 * run.report.radioOccupancy,
                        100.0 * run.report.aggregatorUtilization,
                        worst);
            if (policy == RadioPolicy::Fcfs) {
                fcfs_miss.push_back(missRate(run.report));
                fcfs_occupancy.push_back(run.report.radioOccupancy);
            } else if (nodes == sizes[2]) {
                tdma_large_miss = missRate(run.report);
            }
        }
    }
    const double stress_s = stress_timer.seconds();

    checker.check(fcfs_occupancy.back() > fcfs_occupancy.front(),
                  "radio occupancy grows with fleet size");
    checker.check(fcfs_miss.back() > fcfs_miss.front(),
                  "deadline-miss rate grows with fleet size under "
                  "stress");
    checker.check(fcfs_miss.back() > 0.0 && tdma_large_miss > 0.0,
                  "the 8-node stressed fleet misses deadlines "
                  "under both policies");

    checker.throughput(stress_events, stress_s);

    std::printf("\n");
    return checker.finish("bench_fleet_scaling");
}
