/**
 * @file
 * Shared infrastructure for the per-figure/per-table benchmark
 * harnesses: the paper's evaluation configuration (Section 4.4), a
 * cache of trained designs per test case, and PASS/FAIL shape-check
 * reporting against the paper's claims.
 *
 * Absolute numbers are not expected to match the authors' silicon
 * measurements (the substrate here is a reconstructed energy model);
 * each bench therefore prints the series the paper plots *and*
 * machine-checks the qualitative shape: who wins, by roughly what
 * factor, and where the crossovers fall.
 */

#ifndef XPRO_BENCH_COMMON_HH
#define XPRO_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <sys/resource.h>

#include "core/pipeline.hh"
#include "data/testcases.hh"
#include "sim/system_sim.hh"

namespace xpro::bench
{

/**
 * Wall-clock stopwatch on std::chrono::steady_clock — monotonic, so
 * host clock adjustments (NTP steps, suspend) can never produce
 * negative or wildly wrong bench timings.
 */
class SteadyTimer
{
  public:
    SteadyTimer() : _start(std::chrono::steady_clock::now()) {}

    void restart() { _start = std::chrono::steady_clock::now(); }

    /** Seconds since construction or the last restart(). */
    double
    seconds() const
    {
        const auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - _start).count();
    }

    double ms() const { return seconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point _start;
};

/** Peak resident set size in MiB (getrusage; ru_maxrss is KiB on
 *  Linux). */
inline double
peakRssMb()
{
    struct rusage usage = {};
    getrusage(RUSAGE_SELF, &usage);
    return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/** The paper's classifier setup (Section 4.4), full candidate
 *  budget, with a training-set cap so every bench stays fast. */
inline EngineConfig
paperConfig()
{
    EngineConfig config; // defaults already mirror Section 4.4
    return config;
}

inline TrainingOptions
paperTraining()
{
    TrainingOptions options;
    options.maxTrainingSegments = 300;
    options.seed = 2017;
    return options;
}

/** A trained pipeline per test case, shared by all evaluations. */
class CaseLibrary
{
  public:
    const TrainedPipeline &
    pipeline(TestCase tc)
    {
        auto it = _pipelines.find(tc);
        if (it == _pipelines.end()) {
            const SignalDataset &ds = dataset(tc);
            it = _pipelines
                     .emplace(tc, trainPipeline(ds, paperConfig(),
                                                paperTraining()))
                     .first;
        }
        return it->second;
    }

    const SignalDataset &
    dataset(TestCase tc)
    {
        auto it = _datasets.find(tc);
        if (it == _datasets.end())
            it = _datasets.emplace(tc, makeTestCase(tc)).first;
        return it->second;
    }

    /** Topology for a case under a hardware configuration. */
    EngineTopology
    topology(TestCase tc, const EngineConfig &config)
    {
        const SignalDataset &ds = dataset(tc);
        return buildEngineTopology(pipeline(tc).ensemble,
                                   ds.segmentLength, config,
                                   ds.eventsPerSecond());
    }

  private:
    std::map<TestCase, SignalDataset> _datasets;
    std::map<TestCase, TrainedPipeline> _pipelines;
};

/**
 * Collects PASS/FAIL shape checks plus named metrics and sets the
 * exit code. finish() also emits a one-line JSON summary, so CI can
 * scrape every bench with one grep.
 */
class ShapeChecker
{
  public:
    void
    check(bool ok, const std::string &claim)
    {
        std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL",
                    claim.c_str());
        ++_checks;
        _failures += !ok;
    }

    /** Record a numeric result for the JSON summary line. */
    void
    metric(const std::string &name, double value)
    {
        _metrics.emplace_back(name, value);
    }

    /**
     * Event throughput under the SAME JSON key — "events_per_sec" —
     * in every event-driven bench, so CI can compare them with one
     * grep. @p events is whatever unit of work the bench pushed
     * through (stream events, training segments, sweep points);
     * each bench documents its unit at the call site.
     */
    void
    throughput(size_t events, double seconds)
    {
        metric("events_per_sec",
               seconds > 0.0
                   ? static_cast<double>(events) / seconds
                   : 0.0);
    }

    /** Print a summary; returns the process exit code. */
    int
    finish(const char *bench_name) const
    {
        if (_failures == 0) {
            std::printf("\n%s: all shape checks PASSED\n",
                        bench_name);
        } else {
            std::printf("\n%s: %zu shape check(s) FAILED\n",
                        bench_name, _failures);
        }
        std::printf("{\"bench\":\"%s\",\"checks\":%zu,"
                    "\"failures\":%zu,\"metrics\":{",
                    bench_name, _checks, _failures);
        for (size_t i = 0; i < _metrics.size(); ++i) {
            std::printf("\"%s\":%.9g,",
                        _metrics[i].first.c_str(),
                        _metrics[i].second);
        }
        // Every bench closes with the shared "peak_rss_mb" key, so
        // memory is comparable across all harnesses without each
        // one remembering to report it.
        std::printf("\"peak_rss_mb\":%.9g}}\n", peakRssMb());
        return _failures == 0 ? 0 : 1;
    }

  private:
    size_t _checks = 0;
    size_t _failures = 0;
    std::vector<std::pair<std::string, double>> _metrics;
};

/** Evaluate one engine kind for a case under a configuration. */
inline EngineEvaluation
evaluateCase(CaseLibrary &library, TestCase tc,
             const EngineConfig &config, EngineKind kind)
{
    const SignalDataset &ds = library.dataset(tc);
    const EngineTopology topo = library.topology(tc, config);
    const WirelessLink link(transceiver(config.wireless));
    SensorNodeConfig sensor_config;
    sensor_config.process = config.process;
    const SensorNode sensor(sensor_config);
    const Aggregator aggregator;
    const WorkloadContext workload{ds.eventsPerSecond()};
    return evaluateEngineKind(kind, topo, link, sensor, aggregator,
                              workload);
}

} // namespace xpro::bench

#endif // XPRO_BENCH_COMMON_HH
