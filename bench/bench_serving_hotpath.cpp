/**
 * @file
 * Serving hot-path harness: the pre-PR per-event path (one
 * TrainedPipeline::classify() call per event, heap-allocating
 * feature vectors and scalar kernels) against the allocation-free
 * SIMD hot path with cross-user batching (HotPathPipeline behind
 * BatchServer). Shape checks: the batched predictions are
 * bit-identical to the per-event oracle at every batch size and
 * worker count tried, and the end-to-end event rate improves by at
 * least 3x. The JSON summary reports the shared "events_per_sec" /
 * "peak_rss_mb" keys for the batched path.
 */

#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "dsp/dwt.hh"
#include "dsp/feature_pool.hh"
#include "serve/batch_server.hh"
#include "serve/hot_path.hh"

using namespace xpro;
using namespace xpro::bench;

namespace
{

/** A serving population: one trained model per user plus a shared
 *  event stream hitting all of them round-robin. */
struct Population
{
    std::vector<TrainedPipeline> pipelines;
    std::vector<HotPathPipeline> hot;
    std::vector<SignalDataset> datasets;
    std::vector<ServingEvent> events;
};

/**
 * The pre-PR per-event serving path, reproduced from the retained
 * reference APIs: frame + full DWT per event into freshly allocated
 * vectors, per-kind statistics via computeAllFeatures() (each kind
 * recomputing its own moments), allocating scaler transform, scalar
 * ensemble decision. This is exactly what TrainedPipeline::classify()
 * compiled to before the fused extractor landed; the differential
 * harness proves the live path stayed bit-identical to it, and the
 * bench re-checks that below.
 */
int
referenceClassify(const TrainedPipeline &pipeline,
                  const std::vector<double> &segment)
{
    std::vector<double> raw(featurePoolSize, 0.0);
    const std::vector<double> frame = frameForDwt(segment);
    const DwtDecomposition decomp =
        dwtDecompose(frame, pipeline.extractor.wavelet(), dwtLevels);
    for (size_t d = 0; d < featureDomainCount; ++d) {
        const auto domain = static_cast<FeatureDomain>(d);
        std::vector<double> signal;
        if (domain == FeatureDomain::Time) {
            signal = segment;
        } else {
            const size_t level = domainLevel(domain);
            signal = decomp.detail[level - 1];
            if (level == dwtLevels) {
                signal.insert(signal.end(), decomp.approx.begin(),
                              decomp.approx.end());
            }
        }
        const auto values = computeAllFeatures(signal);
        for (size_t k = 0; k < featureKindCount; ++k)
            raw[featureIndex({domain, allFeatureKinds[k]})] =
                values[k];
    }
    return pipeline.ensemble.predict(
        pipeline.scaler.transform(raw));
}

Population
buildPopulation(size_t eventsTotal)
{
    const TestCase cases[] = {TestCase::C1, TestCase::E1,
                              TestCase::M1};
    Population pop;
    EngineConfig config; // paper defaults
    config.subspace.candidates = 8;
    TrainingOptions options;
    options.maxTrainingSegments = 120;
    options.seed = 2017;

    pop.pipelines.reserve(std::size(cases));
    pop.datasets.reserve(std::size(cases));
    for (TestCase tc : cases) {
        pop.datasets.push_back(makeTestCase(tc));
        pop.pipelines.push_back(
            trainPipeline(pop.datasets.back(), config, options));
    }
    pop.hot.reserve(pop.pipelines.size());
    for (const TrainedPipeline &pipeline : pop.pipelines)
        pop.hot.emplace_back(pipeline);

    pop.events.reserve(eventsTotal);
    for (size_t e = 0; e < eventsTotal; ++e) {
        const size_t user = e % pop.datasets.size();
        const SignalDataset &data = pop.datasets[user];
        const Segment &segment =
            data.segments[(e / pop.datasets.size()) %
                          data.segments.size()];
        pop.events.push_back({static_cast<uint32_t>(user),
                              segment.samples.data(),
                              segment.samples.size()});
    }
    return pop;
}

} // namespace

int
main()
{
    ShapeChecker checker;
    const size_t eventsTotal = 3000;
    Population pop = buildPopulation(eventsTotal);
    std::printf("serving hot path: %zu events across %zu users\n\n",
                pop.events.size(), pop.hot.size());

    // Pre-PR per-event path: every event alone through the reference
    // pipeline, including its per-call feature/DWT allocations.
    std::vector<int> baseline(eventsTotal);
    std::vector<double> sample; // per-event copy, as the old callers
    SteadyTimer per_event_timer;
    for (size_t e = 0; e < eventsTotal; ++e) {
        const ServingEvent &event = pop.events[e];
        sample.assign(event.segment, event.segment + event.length);
        baseline[e] =
            referenceClassify(pop.pipelines[event.user], sample);
    }
    const double per_event_s = per_event_timer.seconds();
    const double per_event_rate = double(eventsTotal) / per_event_s;

    // The retained reference must agree bit-for-bit with today's
    // TrainedPipeline::classify() — otherwise the baseline would be
    // timing a path the library no longer computes.
    bool live_matches_reference = true;
    for (size_t e = 0; e < eventsTotal; ++e) {
        const ServingEvent &event = pop.events[e];
        sample.assign(event.segment, event.segment + event.length);
        live_matches_reference &=
            pop.pipelines[event.user].classify(sample) ==
            baseline[e];
    }

    // Hot path: packed SIMD kernels, arena scratch, cross-user
    // batches sliced across the worker pool.
    std::vector<const HotPathPipeline *> users;
    for (const HotPathPipeline &hot : pop.hot)
        users.push_back(&hot);
    BatchServer server(users, 64, 0); // 0 = all hardware workers
    std::vector<int> batched(eventsTotal);
    server.serveInto(pop.events.data(), eventsTotal,
                     batched.data()); // warmup: grow scratch arenas
    SteadyTimer batched_timer;
    server.serveInto(pop.events.data(), eventsTotal,
                     batched.data());
    const double batched_s = batched_timer.seconds();
    const double batched_rate = double(eventsTotal) / batched_s;
    const double speedup = batched_rate / per_event_rate;

    std::printf("per-event path : %10.0f events/s\n",
                per_event_rate);
    std::printf("batched path   : %10.0f events/s  (%zu workers)\n",
                batched_rate, server.workerCount());
    std::printf("speedup        : %10.2fx\n\n", speedup);

    std::printf("Shape checks:\n");
    checker.check(live_matches_reference,
                  "TrainedPipeline::classify matches the retained "
                  "pre-PR reference path");
    checker.check(batched == baseline,
                  "batched predictions bit-identical to the "
                  "per-event oracle");

    // Identity must hold at EVERY batch size and worker count, not
    // just the fast configuration the gate times.
    bool identical = true;
    for (size_t batch : {0u, 1u, 7u, 64u}) {
        for (size_t workers : {1u, 2u, 0u}) {
            BatchServer variant(users, batch, workers);
            identical &= variant.serve(pop.events) == baseline;
        }
    }
    checker.check(identical,
                  "identity holds at every batch size x worker "
                  "count");
    checker.check(speedup >= 3.0,
                  "batched SIMD serving is at least 3x the "
                  "per-event path end to end");

    checker.metric("per_event_events_per_sec", per_event_rate);
    checker.metric("speedup", speedup);
    checker.throughput(eventsTotal, batched_s);
    return checker.finish("bench_serving_hotpath");
}
