/**
 * @file
 * Regenerates paper Fig. 13: the energy overhead the analytic
 * engine places on the *aggregator* (software execution of the
 * in-aggregator cells plus its radio), comparing the aggregator
 * engine with the cross-end engine (90 nm, wireless Model 2; the
 * sensor node engine has no aggregator cells and is omitted, as in
 * the paper). Shape checks: the cross-end engine's aggregator
 * overhead is below the aggregator engine's in every case, and the
 * resulting phone-battery lifetime comfortably clears the paper's
 * "more than 52 hours" bar. (The paper reports the cross-end
 * overhead at less than half of the aggregator engine's; our
 * generator offloads more cells than the authors' cut did, so the
 * measured ratio is higher -- see EXPERIMENTS.md.)
 */

#include <cstdio>

#include "bench_common.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;
    const EngineConfig config = paperConfig();

    std::printf("Fig. 13: aggregator energy per event in uJ "
                "(software + radio = total)\n\n");
    std::printf("%-4s  %-28s %-28s %10s\n", "case",
                "aggregator engine (A)", "cross-end engine (C)",
                "C/A");

    double sum_a = 0.0;
    double sum_c = 0.0;
    double worst_xpro_life_hr = 1e18;
    bool c_below_a_everywhere = true;
    for (TestCase tc : allTestCases) {
        const auto a = evaluateCase(library, tc, config,
                                    EngineKind::InAggregator);
        const auto c = evaluateCase(library, tc, config,
                                    EngineKind::CrossEnd);
        std::printf("%-4s  %7.2f + %5.2f = %7.2f   "
                    "%7.2f + %5.2f = %7.2f   %9.2f\n",
                    library.dataset(tc).symbol.c_str(),
                    a.aggregatorEnergy.compute.uj(),
                    a.aggregatorEnergy.radio.uj(),
                    a.aggregatorEnergy.total().uj(),
                    c.aggregatorEnergy.compute.uj(),
                    c.aggregatorEnergy.radio.uj(),
                    c.aggregatorEnergy.total().uj(),
                    c.aggregatorEnergy.total() /
                        a.aggregatorEnergy.total());
        sum_a += a.aggregatorEnergy.total().uj();
        sum_c += c.aggregatorEnergy.total().uj();
        c_below_a_everywhere &= c.aggregatorEnergy.total().uj() <
                                a.aggregatorEnergy.total().uj();
        worst_xpro_life_hr =
            std::min(worst_xpro_life_hr, c.aggregatorLifetime.hr());
    }

    std::printf("\naverage aggregator overhead: A=%.2f uJ/event, "
                "C=%.2f uJ/event (C/A = %.2f)\n",
                sum_a / 6.0, sum_c / 6.0, sum_c / sum_a);
    std::printf("worst-case phone battery lifetime running XPro "
                "alone: %.0f hours (2900 mAh, 3.5 V)\n",
                worst_xpro_life_hr);

    std::printf("\nShape checks vs. paper Fig. 13:\n");
    checker.check(c_below_a_everywhere,
                  "cross-end aggregator overhead is below the "
                  "aggregator engine's in every case (paper: less "
                  "than half; measured C/A = " +
                      std::to_string(sum_c / sum_a) + ")");
    checker.check(worst_xpro_life_hr > 52.0,
                  "the aggregator can empower XPro for more than 52 "
                  "hours (paper Section 5.6)");
    return checker.finish("bench_fig13_aggregator_overhead");
}
