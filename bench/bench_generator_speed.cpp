/**
 * @file
 * Generator throughput bench: the cost of one Automatic-XPro-
 * Generator delay sweep, cold versus warm-started.
 *
 * A cold sweep builds a fresh flow network and solves from zero
 * flow at every lambda; a warm sweep keeps one generator, updates
 * edge capacities and resumes from the previous lambda's feasible
 * flow (graph/flow_network). Both must induce identical placements
 * at every lambda — the min-cut source side is canonical — so the
 * speedup is free. The gated claims:
 *
 *  - warm sweep >= 3x faster than cold on the largest Table-1
 *    topology (32 lambda points);
 *  - placements identical at every point;
 *  - the characterization cache absorbs at least half of the cell
 *    cost-model lookups while building the six Table-1 topologies.
 *
 * A 200-cell synthetic topology is also timed (unchecked) to show
 * the warm-start margin at fleet-design scale.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hh"
#include "common/random.hh"
#include "core/partitioner.hh"
#include "hw/cost_cache.hh"

using namespace xpro;
using namespace xpro::bench;

namespace
{

/** Layered random topology with the given number of cells. */
EngineTopology
syntheticTopology(size_t features, size_t svms, uint64_t seed)
{
    Rng rng(seed);
    EngineTopology topo;
    topo.graph = DataflowGraph(4096);
    topo.cells.resize(1);
    topo.segmentLength = 128;

    auto add = [&](const std::string &name, ComponentKind kind) {
        DataflowNode node;
        node.name = name;
        node.outputBits = 32;
        node.costs.sensorEnergy =
            Energy::nanos(rng.uniform(20.0, 2000.0));
        node.costs.aggregatorEnergy =
            Energy::nanos(rng.uniform(100.0, 5000.0));
        node.costs.sensorDelay =
            Time::micros(rng.uniform(10.0, 300.0));
        node.costs.aggregatorDelay =
            Time::micros(rng.uniform(1.0, 30.0));
        const size_t id = topo.graph.addCell(node);
        CellInfo info;
        info.kind = kind;
        topo.cells.push_back(info);
        return id;
    };

    std::vector<size_t> feature_nodes;
    for (size_t i = 0; i < features; ++i) {
        const size_t id =
            add("f" + std::to_string(i), ComponentKind::Var);
        topo.graph.addEdge(DataflowGraph::sourceId, id);
        feature_nodes.push_back(id);
    }
    std::vector<size_t> svm_nodes;
    for (size_t i = 0; i < svms; ++i) {
        const size_t id =
            add("s" + std::to_string(i), ComponentKind::Svm);
        for (size_t f : feature_nodes) {
            if (rng.chance(0.5))
                topo.graph.addEdge(f, id);
        }
        topo.graph.addEdge(
            feature_nodes[rng.below(feature_nodes.size())], id);
        svm_nodes.push_back(id);
    }
    const size_t fusion = add("fusion", ComponentKind::Fusion);
    for (size_t s : svm_nodes)
        topo.graph.addEdge(s, fusion);
    topo.fusionNode = fusion;
    return topo;
}

constexpr size_t lambdaPoints = 32;

/** 32 geometric lambda points spanning the generate() sweep range. */
std::vector<double>
lambdaSchedule()
{
    std::vector<double> lambdas;
    lambdas.reserve(lambdaPoints);
    double lambda = 1e-10;
    // 14 decades over 31 steps.
    const double ratio = std::pow(10.0, 14.0 / 31.0);
    for (size_t i = 0; i < lambdaPoints; ++i, lambda *= ratio)
        lambdas.push_back(lambda);
    return lambdas;
}

bool
samePlacement(const Placement &a, const Placement &b)
{
    if (a.size() != b.size())
        return false;
    for (size_t u = 0; u < a.size(); ++u) {
        if (a.inSensor(u) != b.inSensor(u))
            return false;
    }
    return true;
}

/** One cold sweep: a fresh generator (new network, zero flow) per
 *  lambda. */
std::vector<LambdaCut>
coldSweep(const EngineTopology &topo, const WirelessLink &link,
          const std::vector<double> &lambdas)
{
    std::vector<LambdaCut> cuts;
    cuts.reserve(lambdas.size());
    for (double lambda : lambdas)
        cuts.push_back(XProGenerator(topo, link).cutAt(lambda));
    return cuts;
}

/** One warm sweep: a single generator resumes across all lambdas. */
std::vector<LambdaCut>
warmSweep(const EngineTopology &topo, const WirelessLink &link,
          const std::vector<double> &lambdas)
{
    const XProGenerator generator(topo, link);
    std::vector<LambdaCut> cuts;
    cuts.reserve(lambdas.size());
    for (double lambda : lambdas)
        cuts.push_back(generator.cutAt(lambda));
    return cuts;
}

struct SweepTiming
{
    double coldSec = 0.0;
    double warmSec = 0.0;

    double speedup() const { return coldSec / warmSec; }
};

SweepTiming
timeSweeps(const EngineTopology &topo, const WirelessLink &link,
           const std::vector<double> &lambdas, size_t reps)
{
    SweepTiming timing;
    for (size_t rep = 0; rep < reps; ++rep) {
        SteadyTimer timer;
        coldSweep(topo, link, lambdas);
        timing.coldSec += timer.seconds();
        timer.restart();
        warmSweep(topo, link, lambdas);
        timing.warmSec += timer.seconds();
    }
    return timing;
}

} // namespace

int
main()
{
    ShapeChecker checker;
    CaseLibrary library;
    const EngineConfig config = paperConfig();

    // The six Table-1 topologies; the sweep runs on the largest.
    std::printf("== Table-1 topologies ==\n\n");
    CellCostCache::instance().clear();
    TestCase largest_case = TestCase::C1;
    size_t largest_cells = 0;
    std::map<TestCase, EngineTopology> topologies;
    for (TestCase tc : allTestCases) {
        EngineTopology topo = library.topology(tc, config);
        const size_t cells = topo.graph.cellCount();
        std::printf("  %s: %zu cells\n",
                    testCaseInfo(tc).symbol, cells);
        if (cells > largest_cells) {
            largest_cells = cells;
            largest_case = tc;
        }
        topologies.emplace(tc, std::move(topo));
    }
    const CostCacheStats cache = CellCostCache::instance().stats();
    std::printf("\ncharacterization cache: %llu hits / %llu lookups "
                "(%.1f%%)\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.lookups()),
                100.0 * cache.hitRate());
    checker.check(cache.hitRate() >= 0.5,
                  "characterization cache absorbs >= 50% of cell "
                  "cost lookups");

    const EngineTopology &topo = topologies.at(largest_case);
    const WirelessLink link(transceiver(config.wireless));
    const std::vector<double> lambdas = lambdaSchedule();

    std::printf("\n== %zu-point lambda sweep on %s (%zu cells) "
                "==\n\n",
                lambdas.size(),
                testCaseInfo(largest_case).symbol,
                largest_cells);

    const std::vector<LambdaCut> cold =
        coldSweep(topo, link, lambdas);
    const std::vector<LambdaCut> warm =
        warmSweep(topo, link, lambdas);
    bool identical = cold.size() == warm.size();
    for (size_t i = 0; identical && i < cold.size(); ++i) {
        identical = samePlacement(cold[i].placement,
                                  warm[i].placement);
    }
    checker.check(identical,
                  "warm-started cuts identical to cold solves at "
                  "every lambda");

    const SweepTiming timing = timeSweeps(topo, link, lambdas, 30);
    std::printf("  cold: %8.3f ms/sweep\n",
                1e3 * timing.coldSec / 30);
    std::printf("  warm: %8.3f ms/sweep  (%.1fx)\n",
                1e3 * timing.warmSec / 30, timing.speedup());
    checker.check(timing.speedup() >= 3.0,
                  "warm-started sweep >= 3x faster than cold");

    // Unchecked scale point: a fleet-design-sized synthetic graph.
    const EngineTopology big = syntheticTopology(160, 39, 99);
    const SweepTiming big_timing = timeSweeps(big, link, lambdas, 5);
    std::printf("\n== synthetic %zu-cell topology ==\n\n",
                big.graph.cellCount());
    std::printf("  cold: %8.3f ms/sweep\n",
                1e3 * big_timing.coldSec / 5);
    std::printf("  warm: %8.3f ms/sweep  (%.1fx)\n",
                1e3 * big_timing.warmSec / 5, big_timing.speedup());

    checker.metric("cells", static_cast<double>(largest_cells));
    checker.metric("lambda_points",
                   static_cast<double>(lambdas.size()));
    checker.metric("cold_ms_per_sweep", 1e3 * timing.coldSec / 30);
    checker.metric("warm_ms_per_sweep", 1e3 * timing.warmSec / 30);
    checker.metric("warm_speedup", timing.speedup());
    checker.metric("synthetic_warm_speedup", big_timing.speedup());
    checker.metric("cache_hit_rate", cache.hitRate());
    // Work unit: one warm lambda-sweep point (30 sweeps timed).
    checker.throughput(30 * lambdas.size(), timing.warmSec);

    std::printf("\n");
    return checker.finish("bench_generator_speed");
}
