/**
 * @file
 * Microbenchmark of the Automatic XPro Generator (google-benchmark):
 * the paper's claim is that the generator finds the optimal
 * partitioning in *polynomial time* by reduction to max-flow
 * min-cut, where exhaustive search over 2^cells placements is
 * intractable. This harness measures the generator on growing
 * synthetic topologies and, for small ones, the exhaustive oracle --
 * the crossover makes the asymptotic argument concrete.
 */

#include <benchmark/benchmark.h>

#include "common/random.hh"
#include "core/partitioner.hh"

using namespace xpro;

namespace
{

/** Layered random topology with the given number of cells. */
EngineTopology
syntheticTopology(size_t features, size_t svms, uint64_t seed)
{
    Rng rng(seed);
    EngineTopology topo;
    topo.graph = DataflowGraph(4096);
    topo.cells.resize(1);
    topo.segmentLength = 128;

    auto add = [&](const std::string &name, ComponentKind kind) {
        DataflowNode node;
        node.name = name;
        node.outputBits = 32;
        node.costs.sensorEnergy =
            Energy::nanos(rng.uniform(20.0, 2000.0));
        node.costs.aggregatorEnergy =
            Energy::nanos(rng.uniform(100.0, 5000.0));
        node.costs.sensorDelay =
            Time::micros(rng.uniform(10.0, 300.0));
        node.costs.aggregatorDelay =
            Time::micros(rng.uniform(1.0, 30.0));
        const size_t id = topo.graph.addCell(node);
        CellInfo info;
        info.kind = kind;
        topo.cells.push_back(info);
        return id;
    };

    std::vector<size_t> feature_nodes;
    for (size_t i = 0; i < features; ++i) {
        const size_t id =
            add("f" + std::to_string(i), ComponentKind::Var);
        topo.graph.addEdge(DataflowGraph::sourceId, id);
        feature_nodes.push_back(id);
    }
    std::vector<size_t> svm_nodes;
    for (size_t i = 0; i < svms; ++i) {
        const size_t id =
            add("s" + std::to_string(i), ComponentKind::Svm);
        for (size_t f : feature_nodes) {
            if (rng.chance(0.5))
                topo.graph.addEdge(f, id);
        }
        topo.graph.addEdge(
            feature_nodes[rng.below(feature_nodes.size())], id);
        svm_nodes.push_back(id);
    }
    const size_t fusion = add("fusion", ComponentKind::Fusion);
    for (size_t s : svm_nodes)
        topo.graph.addEdge(s, fusion);
    topo.fusionNode = fusion;
    return topo;
}

const WirelessLink &
link2()
{
    static const WirelessLink link(transceiver(WirelessModel::Model2));
    return link;
}

void
BM_GeneratorMinCut(benchmark::State &state)
{
    const size_t cells = static_cast<size_t>(state.range(0));
    const size_t svms = std::max<size_t>(1, cells / 5);
    const EngineTopology topo =
        syntheticTopology(cells - svms - 1, svms, 99);
    const XProGenerator generator(topo, link2());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            generator.minimumEnergyPlacement().sensorCellCount());
    }
    state.SetComplexityN(static_cast<int64_t>(cells));
}

void
BM_GeneratorWithDelayConstraint(benchmark::State &state)
{
    const size_t cells = static_cast<size_t>(state.range(0));
    const size_t svms = std::max<size_t>(1, cells / 5);
    const EngineTopology topo =
        syntheticTopology(cells - svms - 1, svms, 99);
    const XProGenerator generator(topo, link2());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            generator.generate().placement.sensorCellCount());
    }
    state.SetComplexityN(static_cast<int64_t>(cells));
}

void
BM_ExhaustiveOracle(benchmark::State &state)
{
    const size_t cells = static_cast<size_t>(state.range(0));
    const size_t svms = std::max<size_t>(1, cells / 5);
    const EngineTopology topo =
        syntheticTopology(cells - svms - 1, svms, 99);
    const XProGenerator generator(topo, link2());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            generator.exhaustiveOptimum(Time::hours(1.0))
                .sensorCellCount());
    }
    state.SetComplexityN(static_cast<int64_t>(cells));
}

} // namespace

BENCHMARK(BM_GeneratorMinCut)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Complexity();
BENCHMARK(BM_GeneratorWithDelayConstraint)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ExhaustiveOracle)->Arg(8)->Arg(12)->Arg(16)->Arg(20)
    ->Complexity();

BENCHMARK_MAIN();
