/**
 * @file
 * Fault-resilience harness: case C1's cross-end engine streamed over
 * progressively worse channels (the named fault presets), then
 * through a total blackout and a mid-stream outage with recovery.
 * Shape checks: every event is classified under every profile (the
 * sensor-local fallback never loses a classification); under a total
 * blackout the degraded compute energy is exactly the all-in-sensor
 * analytic figure (each cell charged at most once) and the total
 * sensor energy stays within the in-sensor envelope plus the bounded
 * ARQ's per-attempt airtime; after a transient outage every buffered
 * result is replayed.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.hh"

using namespace xpro;
using namespace xpro::bench;

int
main()
{
    CaseLibrary library;
    ShapeChecker checker;
    const EngineConfig config = paperConfig();
    const TestCase tc = TestCase::C1;
    const EngineTopology topo = library.topology(tc, config);
    const WirelessLink link(transceiver(config.wireless));
    const Placement cut = Placement::trivialCut(topo);
    const double rate = library.dataset(tc).eventsPerSecond();
    const size_t events = 40;

    const SensorEnergyBreakdown in_sensor = sensorEventEnergy(
        topo, Placement::allInSensor(topo), link);
    const SensorEnergyBreakdown cross_end =
        sensorEventEnergy(topo, cut, link);

    std::printf("fault resilience, case %s: %zu events at %.1f /s "
                "on the trivial cut\n\n",
                library.dataset(tc).symbol.c_str(), events, rate);
    std::printf("%-9s %7s %9s %11s %9s %8s %12s\n", "profile",
                "events", "degraded", "delivered", "attempts",
                "outages", "sensor uJ");

    bool all_classified = true;
    double bursty_delivered_ratio = 1.0;
    size_t simulated_events = 0;
    SteadyTimer stream_timer;
    for (const std::string &name : FaultProfile::presetNames()) {
        const FaultProfile profile = FaultProfile::preset(name);
        const StreamResult stream =
            simulateStream(topo, cut, link, rate, events, profile);
        const RobustnessReport &r = stream.robustness;
        std::printf("%-9s %7zu %9zu %8zu/%-2zu %9zu %8zu %12.3f\n",
                    name.c_str(), stream.events,
                    stream.degradedEvents, r.packetsDelivered,
                    r.packetsOffered, r.attempts, r.outages,
                    stream.sensorEnergy.total().nj() * 1e-3);
        all_classified &= stream.events == events;
        simulated_events += stream.events;
        if (name == "bursty" && r.packetsOffered > 0) {
            bursty_delivered_ratio =
                double(r.packetsDelivered) / double(r.packetsOffered);
        }
    }

    const double preset_stream_s = stream_timer.seconds();

    // Total blackout: the link is down for the whole run.
    FaultProfile blackout = FaultProfile::preset("harsh");
    blackout.outages.push_back({Time(), Time::millis(1e9)});
    const StreamResult dark =
        simulateStream(topo, cut, link, rate, events, blackout);
    std::printf("%-9s %7zu %9zu %8zu/%-2zu %9zu %8zu %12.3f\n",
                "blackout", dark.events, dark.degradedEvents,
                dark.robustness.packetsDelivered,
                dark.robustness.packetsOffered,
                dark.robustness.attempts, dark.robustness.outages,
                dark.sensorEnergy.total().nj() * 1e-3);

    // Transient outage with recovery: loss-free channel, one hole.
    FaultProfile transient;
    transient.enabled = true;
    const Time period = Time::micros(1e6 / rate);
    transient.outages.push_back({period * 1.5, period * 4.5});
    const StreamResult healed =
        simulateStream(topo, cut, link, rate, events, transient);

    std::printf("\nper-event energy: cross-end %.3f uJ, "
                "all-in-sensor %.3f uJ; blackout per event %.3f uJ\n",
                cross_end.total().nj() * 1e-3,
                in_sensor.total().nj() * 1e-3,
                dark.sensorEnergy.total().nj() * 1e-3 /
                    double(events));
    std::printf("transient outage: %zu degraded, %zu replayed, "
                "mean recovery %.3f ms\n",
                healed.degradedEvents,
                healed.robustness.replayedResults,
                healed.robustness.meanRecoveryMs);

    // The worst single ARQ attempt the run can charge: the largest
    // frame either end can put on the air, all four energy terms.
    size_t max_bits = EngineTopology::resultBits;
    for (size_t v = 0; v < topo.graph.nodeCount(); ++v)
        max_bits = std::max(max_bits, topo.graph.node(v).outputBits);
    const AttemptCost worst = link.attempt(max_bits);
    const Energy per_attempt =
        worst.dataTx + worst.dataRx + worst.ackTx + worst.ackRx;
    const double envelope_nj =
        double(events) * in_sensor.total().nj() +
        double(dark.robustness.attempts) * per_attempt.nj();

    std::printf("\nShape checks:\n");
    checker.check(all_classified && dark.events == events &&
                      healed.events == events,
                  "every event is classified under every profile");
    checker.check(dark.degradedEvents == events &&
                      dark.robustness.packetsDelivered == 0,
                  "total blackout degrades every event to the local "
                  "fallback");
    checker.check(dark.sensorEnergy.compute.nj() <=
                      double(events) * in_sensor.compute.nj() + 1e-6,
                  "degraded compute never exceeds the all-in-sensor "
                  "figure (each cell charged at most once)");
    checker.check(dark.sensorEnergy.total().nj() <= envelope_nj,
                  "blackout energy stays within the in-sensor "
                  "envelope plus bounded ARQ attempts");
    checker.check(healed.robustness.replayedResults >= 1 &&
                      healed.robustness.bufferedResults == 0,
                  "after a transient outage every buffered result is "
                  "replayed");

    checker.metric("blackout_compute_ratio",
                   dark.sensorEnergy.compute.nj() /
                       (double(events) * in_sensor.compute.nj()));
    checker.metric("blackout_uj_per_event",
                   dark.sensorEnergy.total().nj() * 1e-3 /
                       double(events));
    checker.metric("bursty_delivered_ratio", bursty_delivered_ratio);
    checker.metric("recovery_mean_ms",
                   healed.robustness.meanRecoveryMs);
    checker.throughput(simulated_events, preset_stream_s);
    return checker.finish("bench_fault_resilience");
}
