#!/bin/sh
# Build the tree under ThreadSanitizer and run the thread-spawning
# suites under it: the fleet tests (worker pool, parallel design
# phase, sharded population drain with per-shard wheels), the
# generator property tests (parallel lambda-candidate
# evaluation, shared characterization cache), the ML suites
# (parallel ensemble training and cross-validation), and the
# fault-injection suites (shared-channel fleet ARQ), and the serving
# hot-path suite (cross-user batches sliced across workers), and the
# stats-registry suite (concurrent registration, relaxed-atomic
# cells, snapshot determinism across shards x workers), and the
# chaos suite (barrier-driven failover migration and queue re-keying
# racing the sharded drain; its determinism test covers >= 2
# shards x workers combinations under TSan). Usage:
#
#   scripts/check_tsan_fleet.sh [build-dir]
#
# The build directory defaults to build-tsan next to the regular
# build so the two configurations never share object files.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}

cmake -B "$build" -S "$repo" -DXPRO_SANITIZE=thread
cmake --build "$build" \
    --target test_fleet test_event_queue \
             test_partitioner_property test_ml_parallel \
             test_random_subspace test_crossval \
             test_fault_injection test_trace_export \
             test_hotpath_identity test_stats_registry \
             test_fleet_chaos \
    -j "$(nproc)"
ctest --test-dir "$build" \
    -L 'fleet|generator|ml|robust|hotpath|obs|chaos' \
    --output-on-failure
echo "TSan fleet pass: OK"
