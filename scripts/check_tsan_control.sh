#!/bin/sh
# Build the tree under ThreadSanitizer and run the adaptive-controller
# suites under it: the controller tests themselves (warm generator
# re-solves, windowed adaptive simulation) plus the fleet tests the
# adaptive fleet pass builds on (the design phase still runs on the
# worker pool; the per-node adaptive passes are sequential by design
# and must stay race-free next to it). Usage:
#
#   scripts/check_tsan_control.sh [build-dir]
#
# The build directory defaults to build-tsan next to the regular
# build so the two configurations never share object files.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-tsan"}

cmake -B "$build" -S "$repo" -DXPRO_SANITIZE=thread
cmake --build "$build" \
    --target test_controller test_fleet \
    -j "$(nproc)"
ctest --test-dir "$build" -L 'control|fleet' \
    --output-on-failure
echo "TSan control pass: OK"
