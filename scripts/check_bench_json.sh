#!/bin/sh
# Run every bench harness at its smallest shape (XPRO_BENCH_SMOKE=1
# shrinks the fleet-scale benches; the figure benches are already
# small) and validate the machine-readable contract each one must
# keep: exactly one summary line of the form
#
#   {"bench":"<name>","checks":N,"failures":N,"metrics":{...}}
#
# with the shared "peak_rss_mb" key present and finite, and — when
# the bench reports throughput — a finite, positive
# "events_per_sec". CI scrapes these lines with one grep; a bench
# that stops emitting them silently falls out of tracking, which
# this script turns into a hard failure. Usage:
#
#   scripts/check_bench_json.sh [build-dir] [bench ...]
#
# The build directory defaults to ./build; with no bench names every
# bench_* binary in <build-dir>/bench runs.
set -u

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
[ $# -gt 0 ] && shift

if [ ! -d "$build/bench" ]; then
    echo "error: '$build/bench' not found (build first)" >&2
    exit 2
fi

if [ $# -gt 0 ]; then
    benches=$*
else
    benches=$(cd "$build/bench" && ls bench_* | grep -v '\.')
fi

failures=0
for bench in $benches; do
    bin="$build/bench/$bench"
    if [ ! -x "$bin" ]; then
        echo "FAIL $bench: no executable at $bin"
        failures=$((failures + 1))
        continue
    fi
    out=$(XPRO_BENCH_SMOKE=1 "$bin" 2>&1)
    rc=$?
    json=$(printf '%s\n' "$out" | grep '^{"bench":')
    lines=$(printf '%s\n' "$json" | grep -c '^{"bench":' || true)
    if [ "$lines" -ne 1 ]; then
        echo "FAIL $bench: expected exactly 1 summary line, got" \
             "$lines (exit $rc)"
        failures=$((failures + 1))
        continue
    fi
    # Shape-check the one-line JSON with awk: required keys exist
    # and the shared metrics are finite numbers (printf %.9g never
    # emits nan/inf for sane inputs, but a broken timer can).
    if ! printf '%s\n' "$json" | awk -v bench="$bench" '
        {
            ok = 1
            if ($0 !~ ("^\\{\"bench\":\"" bench "\"")) {
                print "  wrong bench name"; ok = 0
            }
            if ($0 !~ /"checks":[0-9]+/) {
                print "  missing checks count"; ok = 0
            }
            if ($0 !~ /"failures":[0-9]+/) {
                print "  missing failures count"; ok = 0
            }
            if ($0 !~ /"metrics":\{/) {
                print "  missing metrics object"; ok = 0
            }
            if (!match($0, /"peak_rss_mb":[0-9.eE+-]+\}\}$/)) {
                print "  missing/non-numeric peak_rss_mb"; ok = 0
            } else {
                v = substr($0, RSTART + 14,
                           RLENGTH - 16) + 0
                if (!(v > 0 && v < 1e6)) {
                    print "  peak_rss_mb not finite-positive: " v
                    ok = 0
                }
            }
            if (match($0, /"events_per_sec":[^,}]+/)) {
                v = substr($0, RSTART + 17, RLENGTH - 17) + 0
                if (!(v > 0 && v < 1e15)) {
                    print "  events_per_sec not finite-positive: " v
                    ok = 0
                }
            }
            exit ok ? 0 : 1
        }'
    then
        echo "FAIL $bench: summary line failed shape checks"
        echo "  $json"
        failures=$((failures + 1))
        continue
    fi
    echo "OK   $bench (exit $rc)"
    # A smoke run may legitimately fail its own perf gates on a
    # loaded machine; the contract checked here is the JSON shape,
    # so the bench exit code is reported but not fatal.
done

if [ "$failures" -gt 0 ]; then
    echo "bench JSON check: $failures bench(es) FAILED"
    exit 1
fi
echo "bench JSON check: OK"
