#!/bin/sh
# Build the tree under AddressSanitizer + UndefinedBehaviorSanitizer
# and run the generator-facing suites under it: the warm-started
# flow network, the partitioner, the property-based generator oracle
# tests, the ML suites (flat-matrix row views, batched kernels,
# parallel ensemble training), the fault-injection suites (ARQ
# callback-chain lifetimes), and the adaptive-controller suites
# (long-lived warm flow network under repeated capacity updates),
# and the serving hot-path suite (arena lifetimes, packed SV tiles,
# cross-user batch slicing), and the stats-registry suite (fixed
# cell array bounds, slab growth). Usage:
#
#   scripts/check_asan_generator.sh [build-dir]
#
# The build directory defaults to build-asan next to the regular
# build so the configurations never share object files.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-asan"}

cmake -B "$build" -S "$repo" -DXPRO_SANITIZE=address,undefined
cmake --build "$build" \
    --target test_flow_network test_partitioner \
             test_partitioner_property test_ml_parallel \
             test_random_subspace test_crossval \
             test_fault_injection test_trace_export \
             test_controller test_hotpath_identity \
             test_stats_registry \
    -j "$(nproc)"
ctest --test-dir "$build" \
    -L 'generator|partitioner|flow|ml|robust|control|hotpath|obs' \
    --output-on-failure
echo "ASan/UBSan generator pass: OK"
