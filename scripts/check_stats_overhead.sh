#!/bin/sh
# The true zero-overhead check for the stats registry: build the
# tree twice — once as usual (XPRO_STATS=ON, the default) and once
# with -DXPRO_STATS=OFF so every XPRO_STAT update, slab write and
# registry cell compiles out — run bench_stats_overhead from both
# builds, and gate the compiled-in build's baseline events/sec at
# within 3% of the compiled-out build's. This catches costs the
# bench's in-binary A/B cannot see (code-size growth, the `collect`
# branches themselves, registry construction). Usage:
#
#   scripts/check_stats_overhead.sh [build-dir] [nostats-build-dir]
#
# Directories default to ./build and ./build-nostats; the
# configurations never share object files.
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
nostats=${2:-"$repo/build-nostats"}

cmake -B "$build" -S "$repo" -DXPRO_STATS=ON
cmake --build "$build" --target bench_stats_overhead -j "$(nproc)"
cmake -B "$nostats" -S "$repo" -DXPRO_STATS=OFF
cmake --build "$nostats" --target bench_stats_overhead \
    -j "$(nproc)"

# The compiled-out build's instrumented arm IS its baseline (every
# stats op is a no-op), so compare the two builds' baseline keys.
# One run per build is not enough on a shared box — identical runs
# spread several percent — so interleave ABBA blocks of whole runs
# and compare per-build MEDIANS, the same discipline the bench
# applies to its in-binary slices.
rate_of() {
    "$1/bench/bench_stats_overhead" |
        grep '^{"bench":' |
        sed 's/.*"baseline_events_per_sec":\([0-9.eE+-]*\).*/\1/'
}

on_rates=""
off_rates=""
for round in 1 2 3; do
    on_rates="$on_rates $(rate_of "$build")"
    off_rates="$off_rates $(rate_of "$nostats")"
    off_rates="$off_rates $(rate_of "$nostats")"
    on_rates="$on_rates $(rate_of "$build")"
done

median_of() {
    printf '%s\n' "$@" | sort -g | awk '
        { v[NR] = $1 }
        END {
            if (NR == 0) { print 0; exit }
            m = int((NR + 1) / 2)
            print (NR % 2) ? v[m] : (v[m] + v[m + 1]) / 2
        }'
}

# shellcheck disable=SC2086 # word splitting is the point
on_rate=$(median_of $on_rates)
# shellcheck disable=SC2086
off_rate=$(median_of $off_rates)
echo "stats ON  baseline (median of 6): $on_rate events/cpu-s"
echo "stats OFF baseline (median of 6): $off_rate events/cpu-s"

awk -v on="$on_rate" -v off="$off_rate" 'BEGIN {
    if (!(on > 0 && off > 0)) {
        print "stats overhead check: missing rates"; exit 1
    }
    pct = 100 * (off - on) / off
    printf "cross-build overhead: %.2f%%\n", pct
    if (on < 0.97 * off) {
        print "stats overhead check: FAILED (> 3%)"; exit 1
    }
    print "stats overhead check: OK"
}'
