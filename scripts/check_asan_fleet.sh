#!/bin/sh
# Build the tree under AddressSanitizer + UndefinedBehaviorSanitizer
# and run the fleet-label suites under it: the detailed fleet
# simulator (arena-backed SoA member state, radio arbitration
# lifetimes), the population path (node slabs, per-slot wheel
# vectors swapped during drains, tier budget arrays), the
# hierarchical time wheel itself (bitmap scans, far-overflow
# refiling, schedule-during-drain), and the chaos layer (masked
# cross-shard extract/re-file during failover, parked-inject replay
# buffers). Usage:
#
#   scripts/check_asan_fleet.sh [build-dir]
#
# The build directory defaults to build-asan next to the regular
# build so the configurations never share object files (and so this
# pass shares its build tree with check_asan_generator.sh).
set -eu

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build-asan"}

cmake -B "$build" -S "$repo" -DXPRO_SANITIZE=address,undefined
cmake --build "$build" \
    --target test_fleet test_event_queue test_fleet_chaos \
    -j "$(nproc)"
ctest --test-dir "$build" -L 'fleet|chaos' --output-on-failure
echo "ASan/UBSan fleet pass: OK"
