/**
 * @file
 * Command-line front-end for the XPro design flow: pick a test case
 * and a hardware configuration, get the trained engine, the
 * generator's cut and the full evaluation — optionally exporting a
 * Chrome trace of one simulated event.
 *
 *   xpro_cli --case C1 --process 90 --wireless 2 [--ber 1e-4]
 *            [--engine C|A|S|trivial] [--trace event.json]
 *            [--candidates N] [--max-train N] [--ml-workers W]
 *
 * Fleet mode simulates N heterogeneous nodes on one shared
 * aggregator instead of evaluating a single node:
 *
 *   xpro_cli --fleet 6 [--workers W] [--sweep-workers W]
 *            [--policy fcfs|tdma] [--events N] [--wireless M]
 *            [--ber p] [--seed S] [--serve-events N]
 *            [--batch-events B] [--serve-workers W]
 *
 * Fault injection (single-node stream and fleet alike): a named
 * profile or explicit Gilbert-Elliott/outage parameters switch the
 * event simulators to the bursty channel with bounded ARQ and the
 * outage-fallback protocol:
 *
 *   xpro_cli --case C1 --fault-profile bursty [--max-retries N]
 *            [--loss-burst pGB:pBG] [--outage start:end]
 *
 * Adaptive mode runs the online cross-end controller over a seeded
 * nonstationary day trace (battery decay, channel episodes, rate
 * steps) and compares its lifetime against both static extremes:
 *
 *   xpro_cli --case C1 --adaptive [--repartition-period s]
 *            [--hysteresis frac] [--min-dwell s]
 *            [--control-trace decisions.json]
 *
 * Population mode simulates N nodes (up to millions) through the
 * sensor -> phone -> gateway -> cloud tier hierarchy on a sharded
 * event queue; the report is byte-identical at any shard or worker
 * count:
 *
 *   xpro_cli --nodes 1000000 [--shards S] [--workers W]
 *            [--tiers sensors:phones] [--events N] [--seed S]
 *
 * The population path takes a deterministic chaos schedule on top:
 * gateway crash/restart episodes, correlated regional outages,
 * cloud-unreachable windows and node churn, with self-healing
 * failover — the report stays byte-identical at any shard or
 * worker count, and identical to a chaos-free run when disabled:
 *
 *   xpro_cli --nodes 1000000 --chaos-profile harsh
 *            [--gateway-mtbf W] [--cloud-outage a:b] [--churn f]
 *            [--chaos-trace chaos.json]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/argparse.hh"
#include "common/logging.hh"
#include "control/adaptive_fleet.hh"
#include "core/pipeline.hh"
#include "data/testcases.hh"
#include "fleet/fleet.hh"
#include "obs/stats_export.hh"
#include "sim/trace_export.hh"
#include "wireless/fault.hh"

using namespace xpro;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --case C1|C2|E1|E2|M1|M2   test case (default C1)\n"
        "  --process 130|90|45        process node (default 90)\n"
        "  --wireless 1|2|3           transceiver model (default 2)\n"
        "  --ber <p>                  channel bit error rate "
        "(default 0)\n"
        "  --engine A|S|trivial|C     engine to evaluate "
        "(default C)\n"
        "  --candidates <n>           subspace candidates "
        "(default 100)\n"
        "  --max-train <n>            training segment cap "
        "(default 300)\n"
        "  --ml-workers <n>           ensemble training threads, "
        "0 = all cores (default 1)\n"
        "  --trace <file>             write a Chrome trace of one "
        "event\n"
        "  --seed <s>                 dataset/training RNG seed "
        "(default 2017)\n"
        "  --fleet <n>                simulate an n-node fleet on "
        "one aggregator\n"
        "  --workers <n>              fleet design worker threads "
        "(default 1)\n"
        "  --sweep-workers <n>        generator sweep threads per "
        "node (default 1)\n"
        "  --policy fcfs|tdma         fleet radio arbitration "
        "(default fcfs)\n"
        "  --serve-events <n>         steady-state serving events "
        "classified after the fleet\n"
        "                             event simulation on the SIMD "
        "hot path (default 0 = off)\n"
        "  --batch-events <n>         cross-user serving batch "
        "size; one batch spans up to\n"
        "                             n events from any mix of "
        "nodes (default 0 = one batch)\n"
        "  --serve-workers <n>        serving worker threads, 0 = "
        "one per hardware thread\n"
        "                             (default 1; predictions "
        "identical at any value)\n"
        "  --events <n>               simulated events per fleet "
        "node or fault-injected stream (default 6)\n"
        "  --fault-profile <name>     fault injection preset: none, "
        "mild, bursty or harsh (default none)\n"
        "  --loss-burst <pGB>:<pBG>   Gilbert-Elliott good-to-bad / "
        "bad-to-good probabilities (enables fault injection)\n"
        "  --max-retries <n>          ARQ retries before a packet "
        "is abandoned (default 5)\n"
        "  --outage <a>:<b>           scripted outage window in ms, "
        "repeatable (enables fault injection)\n"
        "  --adaptive                 run the online cross-end "
        "controller over a seeded nonstationary day trace\n"
        "  --repartition-period <s>   control-window length in "
        "seconds (default 60)\n"
        "  --hysteresis <frac>        relative objective improvement "
        "a re-partition must beat (default 0.05)\n"
        "  --min-dwell <s>            minimum seconds between "
        "re-partitions (default 120)\n"
        "  --control-trace <file>     write a Chrome trace of the "
        "controller's decisions\n"
        "  --nodes <n>                population mode: simulate n "
        "nodes through the tier hierarchy\n"
        "  --shards <n>               population event-queue shards "
        "(default 1; report identical at any value)\n"
        "  --tiers <a>:<b>            sensors per phone : phones "
        "per gateway (default 32:64)\n"
        "  --chaos-profile <name>     population chaos preset: none, "
        "flaky, regional, churn or harsh\n"
        "  --gateway-mtbf <w>         mean windows between gateway "
        "crashes (enables chaos)\n"
        "  --cloud-outage <a>:<b>     cloud-unreachable window range "
        "[a, b), repeatable (enables chaos)\n"
        "  --churn <frac>             fraction of nodes that churn "
        "out and rejoin (enables chaos)\n"
        "  --chaos-trace <file>       write a Chrome trace of the "
        "chaos episodes\n"
        "  --stats                    print the stats-registry "
        "table after the run\n"
        "  --stats-out <file>         write the stats-registry "
        "snapshot as JSON\n",
        argv0);
    std::exit(2);
}

TestCase
parseCase(const std::string &value)
{
    for (TestCase tc : allTestCases) {
        if (value == testCaseInfo(tc).symbol)
            return tc;
    }
    fatal("unknown test case '%s'", value.c_str());
}

ProcessNode
parseProcess(const std::string &value)
{
    if (value == "130")
        return ProcessNode::Tsmc130;
    if (value == "90")
        return ProcessNode::Tsmc90;
    if (value == "45")
        return ProcessNode::Tsmc45;
    fatal("unknown process '%s' (expected 130, 90 or 45)",
          value.c_str());
}

WirelessModel
parseWireless(const std::string &value)
{
    if (value == "1")
        return WirelessModel::Model1;
    if (value == "2")
        return WirelessModel::Model2;
    if (value == "3")
        return WirelessModel::Model3;
    fatal("unknown wireless model '%s' (expected 1, 2 or 3)",
          value.c_str());
}

EngineKind
parseEngine(const std::string &value)
{
    if (value == "A")
        return EngineKind::InAggregator;
    if (value == "S")
        return EngineKind::InSensor;
    if (value == "trivial")
        return EngineKind::TrivialCut;
    if (value == "C")
        return EngineKind::CrossEnd;
    fatal("unknown engine '%s' (expected A, S, trivial or C)",
          value.c_str());
}

RadioPolicy
parsePolicy(const std::string &value)
{
    if (value == "fcfs")
        return RadioPolicy::Fcfs;
    if (value == "tdma")
        return RadioPolicy::Tdma;
    fatal("unknown radio policy '%s' (expected fcfs or tdma)",
          value.c_str());
}

/** Split "<a>:<b>" into its two halves. */
std::pair<std::string, std::string>
splitPair(const std::string &value, const char *what)
{
    const size_t colon = value.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= value.size()) {
        fatal("%s: expected '<a>:<b>', got '%s'", what,
              value.c_str());
    }
    return {value.substr(0, colon), value.substr(colon + 1)};
}

/** Non-negative duration in milliseconds. */
double
parseMillisArg(const std::string &value, const char *what)
{
    char *end = nullptr;
    const double ms = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || !(ms >= 0.0)) {
        fatal("%s: expected a duration in ms, got '%s'", what,
              value.c_str());
    }
    return ms;
}

/**
 * Reject a --ber that makes the topology's largest payload (the
 * raw segment) practically undeliverable here, at argument-parse
 * time, instead of panicking deep inside expectedTransmissions()
 * mid-run.
 */
void
checkBerFeasible(double ber, size_t segment_length)
{
    if (ber == 0.0)
        return;
    ChannelModel channel;
    channel.bitErrorRate = ber;
    const size_t payload =
        segment_length * wordBits + packetHeaderBits;
    if (!channel.deliverable(payload)) {
        fatal("--ber %g: the %zu-bit raw-segment payload is "
              "practically undeliverable at this error rate "
              "(per-packet success below 1e-12); lower --ber",
              ber, payload);
    }
}

int
runFleetMode(size_t fleet_size, size_t workers,
             size_t sweep_workers, RadioPolicy policy, size_t events,
             size_t serve_events, size_t batch_events,
             size_t serve_workers, WirelessModel wireless, double ber,
             uint64_t seed, const FaultProfile &faults,
             const ControlConfig &control, ProcessNode process,
             const std::string &control_trace_path)
{
    FleetConfig config;
    config.nodes = heterogeneousFleet(fleet_size, seed);
    config.wireless = wireless;
    config.bitErrorRate = ber;
    config.policy = policy;
    config.workers = workers;
    config.sweepWorkers = sweep_workers;
    config.eventsPerNode = events;
    config.servingEvents = serve_events;
    config.batchEvents = batch_events;
    config.servingWorkers = serve_workers;
    config.faults = faults;

    std::printf("designing %zu-node fleet on %zu worker(s)...\n",
                fleet_size, workers);
    FleetResult result;
    if (control.enabled) {
        AdaptiveRunConfig run;
        run.control = control;
        run.faults = faults;
        run.sensor.process = process;
        const NonstationaryTrace trace = NonstationaryTrace::day(seed);
        result = runAdaptiveFleet(config, trace, run);
    } else {
        result = runFleet(config);
    }
    std::printf("design: %.2f s CPU over workers (busiest %.2f s), "
                "%.2f s wall\n\n",
                result.designWork.sec(),
                result.designMakespan.sec(),
                result.designWall.sec());
    result.report.writeText(std::cout);
    if (!control_trace_path.empty()) {
        writeControlTraceFile(result.report.control,
                              control_trace_path);
        std::printf("control trace: %s (%zu decisions)\n",
                    control_trace_path.c_str(),
                    result.report.control.decisions.size());
    }
    return 0;
}

int
runPopulationMode(uint64_t nodes, size_t shards, size_t workers,
                  uint64_t events, uint64_t seed,
                  const TierConfig &tiers, const ChaosConfig &chaos,
                  const FaultProfile &faults,
                  const std::string &chaos_trace_path)
{
    PopulationFleetConfig config;
    config.nodes = nodes;
    config.shards = shards;
    config.workers = workers;
    config.eventsPerNode = events;
    config.seed = seed;
    config.tiers = tiers;
    config.chaos = chaos;
    config.faults = faults;

    const PopulationFleetResult result = runPopulationFleet(config);
    // The effective count can be lower than requested: a shard owns
    // whole gateways, so tiny fleets cannot use many shards.
    std::printf("population: %llu nodes, %zu shard(s) effective "
                "(%zu requested), %zu worker(s), %llu wheel "
                "events\n\n",
                static_cast<unsigned long long>(nodes),
                result.effectiveShards, shards, workers,
                static_cast<unsigned long long>(
                    result.simulatedEvents));
    result.report.writeText(std::cout);
    if (!chaos_trace_path.empty()) {
        writeChaosTraceFile(result.report.chaos, chaos_trace_path);
        std::printf("chaos trace: %s (%zu episodes)\n",
                    chaos_trace_path.c_str(),
                    result.report.chaos.episodes.size());
    }
    return 0;
}

/**
 * End-of-run telemetry: print the human table (--stats) and/or the
 * JSON snapshot (--stats-out). The path was validated at parse time,
 * but the disk can still fill mid-write, so failures stay fatal.
 */
void
emitStats(bool table, const std::string &out_path)
{
    if (!table && out_path.empty())
        return;
    if (!statsCompiledIn()) {
        warn("stats are compiled out (-DXPRO_STATS=OFF); the "
             "snapshot is empty");
    }
    const StatsSnapshot snap = StatsRegistry::instance().snapshot();
    if (table)
        writeStatsTable(snap, std::cout);
    if (!out_path.empty()) {
        std::ofstream out(out_path);
        if (!out)
            fatal("cannot open '%s' for writing", out_path.c_str());
        writeStatsJson(snap, out);
        if (!out)
            fatal("write to '%s' failed", out_path.c_str());
        std::printf("stats snapshot: %s (%zu stats)\n",
                    out_path.c_str(), snap.size());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    TestCase test_case = TestCase::C1;
    ProcessNode process = ProcessNode::Tsmc90;
    WirelessModel wireless = WirelessModel::Model2;
    EngineKind engine = EngineKind::CrossEnd;
    double ber = 0.0;
    size_t candidates = 100;
    size_t max_train = 300;
    size_t ml_workers = 1;
    std::string trace_path;
    uint64_t seed = 2017;
    size_t fleet_size = 0;
    size_t population_nodes = 0;
    size_t shards = 1;
    TierConfig tiers;
    ChaosConfig chaos;
    std::string chaos_trace_path;
    size_t workers = 1;
    size_t sweep_workers = 1;
    RadioPolicy policy = RadioPolicy::Fcfs;
    size_t events = 6;
    size_t serve_events = 0;
    size_t batch_events = 0;
    size_t serve_workers = 1;
    FaultProfile faults;
    bool max_retries_set = false;
    size_t max_retries = 0;
    bool adaptive = false;
    bool engine_set = false;
    ControlConfig control;
    std::string control_trace_path;
    bool stats_table = false;
    std::string stats_out;

    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            const auto value = [&]() -> std::string {
                if (i + 1 >= argc)
                    fatal("missing value for %s", arg.c_str());
                return argv[++i];
            };
            if (arg == "--case")
                test_case = parseCase(value());
            else if (arg == "--process")
                process = parseProcess(value());
            else if (arg == "--wireless")
                wireless = parseWireless(value());
            else if (arg == "--engine") {
                engine = parseEngine(value());
                engine_set = true;
            }
            else if (arg == "--ber")
                ber = parseProbabilityArg(value(), "--ber");
            else if (arg == "--candidates")
                candidates =
                    parsePositiveArg(value(), "--candidates");
            else if (arg == "--max-train")
                max_train = parsePositiveArg(value(), "--max-train");
            else if (arg == "--ml-workers")
                ml_workers = parseCountArg(value(), "--ml-workers");
            else if (arg == "--trace")
                trace_path = value();
            else if (arg == "--seed")
                seed = parseSeedArg(value(), "--seed");
            else if (arg == "--fleet") {
                // The detailed path multiplies fleet size into
                // events * graph nodes; cap it well below any int
                // overflow (and any tractable run).
                fleet_size =
                    parseBoundedArg(value(), "--fleet", 100000);
            } else if (arg == "--nodes") {
                population_nodes = parseBoundedArg(
                    value(), "--nodes", 100000000);
            } else if (arg == "--shards")
                shards = parseBoundedArg(value(), "--shards", 4096);
            else if (arg == "--tiers") {
                const auto [sensors, phones] =
                    splitPair(value(), "--tiers");
                tiers.sensorsPerPhone =
                    static_cast<uint32_t>(parseBoundedArg(
                        sensors, "--tiers", 65536));
                tiers.phonesPerGateway =
                    static_cast<uint32_t>(parseBoundedArg(
                        phones, "--tiers", 65536));
            }
            else if (arg == "--chaos-profile")
                chaos = ChaosConfig::profile(value());
            else if (arg == "--gateway-mtbf") {
                chaos.gatewayMtbfWindows = parseBoundedArg(
                    value(), "--gateway-mtbf", 1000000);
                chaos.enabled = true;
            } else if (arg == "--cloud-outage") {
                const auto [begin, end] =
                    splitPair(value(), "--cloud-outage");
                ChaosWindowRange range;
                range.begin =
                    parseCountArg(begin, "--cloud-outage");
                range.end = parseBoundedArg(
                    end, "--cloud-outage", 1000000);
                if (range.end <= range.begin)
                    fatal("--cloud-outage: empty window '%s:%s'",
                          begin.c_str(), end.c_str());
                chaos.cloudOutages.push_back(range);
                chaos.enabled = true;
            } else if (arg == "--churn") {
                chaos.churnFraction =
                    parseProbabilityArg(value(), "--churn");
                chaos.enabled = true;
            } else if (arg == "--chaos-trace")
                chaos_trace_path = value();
            else if (arg == "--workers")
                workers = parsePositiveArg(value(), "--workers");
            else if (arg == "--sweep-workers")
                sweep_workers =
                    parsePositiveArg(value(), "--sweep-workers");
            else if (arg == "--policy")
                policy = parsePolicy(value());
            else if (arg == "--events")
                events = parsePositiveArg(value(), "--events");
            else if (arg == "--serve-events")
                serve_events =
                    parseCountArg(value(), "--serve-events");
            else if (arg == "--batch-events")
                batch_events =
                    parseCountArg(value(), "--batch-events");
            else if (arg == "--serve-workers")
                serve_workers =
                    parseCountArg(value(), "--serve-workers");
            else if (arg == "--fault-profile")
                faults = FaultProfile::preset(value());
            else if (arg == "--loss-burst") {
                const auto [good_to_bad, bad_to_good] =
                    splitPair(value(), "--loss-burst");
                faults.burst.pGoodToBad = parseProbabilityArg(
                    good_to_bad, "--loss-burst");
                faults.burst.pBadToGood = parseProbabilityArg(
                    bad_to_good, "--loss-burst");
                faults.enabled = true;
            } else if (arg == "--max-retries") {
                max_retries =
                    parseCountArg(value(), "--max-retries");
                max_retries_set = true;
            } else if (arg == "--outage") {
                const auto [start, end] =
                    splitPair(value(), "--outage");
                OutageWindow window;
                window.start = Time::millis(
                    parseMillisArg(start, "--outage"));
                window.end = Time::millis(
                    parseMillisArg(end, "--outage"));
                if (window.end <= window.start)
                    fatal("--outage: empty window '%s:%s'",
                          start.c_str(), end.c_str());
                faults.outages.push_back(window);
                faults.enabled = true;
            } else if (arg == "--adaptive")
                adaptive = true;
            else if (arg == "--repartition-period")
                control.repartitionPeriod =
                    Time::seconds(parsePositiveRealArg(
                        value(), "--repartition-period"));
            else if (arg == "--hysteresis")
                control.hysteresis = parseNonNegativeRealArg(
                    value(), "--hysteresis");
            else if (arg == "--min-dwell")
                control.minDwell = Time::seconds(
                    parseNonNegativeRealArg(value(), "--min-dwell"));
            else if (arg == "--control-trace")
                control_trace_path = value();
            else if (arg == "--stats")
                stats_table = true;
            else if (arg == "--stats-out") {
                stats_out = value();
                // Reject an unwritable path now (the --ber
                // discipline: fail at parse time, not after a long
                // run). Append mode probes writability without
                // truncating whatever is there.
                std::ofstream probe(stats_out, std::ios::app);
                if (!probe)
                    fatal("--stats-out: cannot open '%s' for "
                          "writing",
                          stats_out.c_str());
            } else
                usage(argv[0]);
        }
        if (max_retries_set)
            faults.arq.maxRetries = max_retries;
        if (faults.enabled)
            faults.validate();
        if (adaptive && engine_set &&
            engine != EngineKind::CrossEnd) {
            fatal("--adaptive re-partitions at run time and cannot "
                  "honor a fixed placement; drop --engine %s",
                  engineKindName(engine).c_str());
        }
        if (!adaptive && !control_trace_path.empty())
            fatal("--control-trace requires --adaptive");
        if (fleet_size == 0 &&
            (serve_events != 0 || batch_events != 0 ||
             serve_workers != 1)) {
            fatal("--serve-events/--batch-events/--serve-workers "
                  "need --fleet");
        }
        control.enabled = adaptive;
        if (adaptive)
            control.validate();

        if (population_nodes > 0 && fleet_size > 0)
            fatal("--nodes and --fleet are mutually exclusive");
        if (population_nodes == 0 && shards != 1)
            fatal("--shards needs --nodes (population mode)");
        if (population_nodes > 0 && adaptive)
            fatal("--adaptive runs on the detailed --fleet path");
        if (chaos.enabled && population_nodes == 0)
            fatal("--chaos-profile/--gateway-mtbf/--cloud-outage/"
                  "--churn need --nodes (population mode)");
        if (!chaos.enabled && !chaos_trace_path.empty())
            fatal("--chaos-trace requires an enabled chaos "
                  "schedule");
        if (chaos.enabled)
            chaos.validate();
        if (population_nodes > 0) {
            const int rc = runPopulationMode(
                population_nodes, shards, workers, events, seed,
                tiers, chaos, faults, chaos_trace_path);
            emitStats(stats_table, stats_out);
            return rc;
        }

        if (fleet_size > 0) {
            size_t largest_segment = 0;
            for (const FleetNodeSpec &spec :
                 heterogeneousFleet(fleet_size, seed)) {
                largest_segment = std::max(
                    largest_segment,
                    testCaseInfo(spec.testCase).segmentLength);
            }
            checkBerFeasible(ber, largest_segment);
            const int rc = runFleetMode(
                fleet_size, workers, sweep_workers, policy, events,
                serve_events, batch_events, serve_workers, wireless,
                ber, seed, faults, control, process,
                control_trace_path);
            emitStats(stats_table, stats_out);
            return rc;
        }
        checkBerFeasible(ber,
                         testCaseInfo(test_case).segmentLength);

        const SignalDataset dataset = makeTestCase(test_case, seed);
        EngineConfig config;
        config.process = process;
        config.wireless = wireless;
        config.subspace.candidates = candidates;
        TrainingOptions options;
        options.maxTrainingSegments = max_train;
        options.seed = seed;
        options.mlWorkers = ml_workers;

        std::printf("case %s (%s): %zu segments x %zu samples, "
                    "%.2f events/s\n",
                    dataset.symbol.c_str(), dataset.name.c_str(),
                    dataset.size(), dataset.segmentLength,
                    dataset.eventsPerSecond());

        const TrainedPipeline pipeline =
            trainPipeline(dataset, config, options);
        std::printf("classifier: %.1f%% held-out accuracy, %zu base "
                    "SVMs over %zu features\n",
                    100.0 * pipeline.testAccuracy,
                    pipeline.ensemble.bases().size(),
                    pipeline.ensemble.usedFeatureIndices().size());

        const EngineTopology topology = buildEngineTopology(
            pipeline.ensemble, dataset.segmentLength, config,
            dataset.eventsPerSecond());
        ChannelModel channel;
        channel.bitErrorRate = ber;
        const WirelessLink link(transceiver(wireless), channel);
        SensorNodeConfig sensor_config;
        sensor_config.process = process;
        const SensorNode sensor(sensor_config);
        const Aggregator aggregator;
        const WorkloadContext workload{dataset.eventsPerSecond()};

        const EngineEvaluation eval = evaluateEngineKind(
            engine, topology, link, sensor, aggregator, workload);

        std::printf("\n%s @ %s, %s%s\n",
                    engineKindName(engine).c_str(),
                    processNodeName(process).c_str(),
                    wirelessModelName(wireless).c_str(),
                    ber > 0.0 ? " (lossy channel)" : "");
        std::printf("  placement : %s\n",
                    eval.placement.summary(topology).c_str());
        std::printf("  energy    : %.2f uJ/event (compute %.2f, "
                    "tx %.2f, rx %.2f)\n",
                    eval.sensorEnergy.total().uj(),
                    eval.sensorEnergy.compute.uj(),
                    eval.sensorEnergy.tx.uj(),
                    eval.sensorEnergy.rx.uj());
        std::printf("  delay     : %.3f ms (front %.3f, wireless "
                    "%.3f, back %.3f)\n",
                    eval.delay.total().ms(),
                    eval.delay.frontCompute.ms(),
                    eval.delay.wireless.ms(),
                    eval.delay.backCompute.ms());
        std::printf("  battery   : %.0f h sensor, %.0f h aggregator "
                    "overhead budget\n",
                    eval.sensorLifetime.hr(),
                    eval.aggregatorLifetime.hr());

        if (faults.enabled) {
            const StreamResult stream = simulateStream(
                topology, eval.placement, link,
                dataset.eventsPerSecond(), events, faults);
            std::printf("\nfault-injected stream (%zu events): "
                        "%zu deadline miss(es), mean %.3f ms, "
                        "worst %.3f ms, %zu degraded\n",
                        stream.events, stream.deadlineMisses,
                        stream.meanLatency.ms(),
                        stream.worstLatency.ms(),
                        stream.degradedEvents);
            stream.robustness.writeText(std::cout);
        }

        if (adaptive) {
            AdaptiveRunConfig run;
            run.control = control;
            run.faults = faults;
            run.sensor.process = process;
            const NonstationaryTrace day =
                NonstationaryTrace::day(seed);

            std::printf("\nadaptive controller over a seeded "
                        "nonstationary day (%zu spans, %.0f h)\n",
                        day.windows.size(), day.total().hr());
            const LifetimeResult adaptive_life =
                adaptiveLifetime(topology, link, day, run);
            const LifetimeResult sensor_life = staticLifetime(
                topology, Placement::allInSensor(topology), link,
                day, run);
            const LifetimeResult aggregator_life = staticLifetime(
                topology, Placement::allInAggregator(topology), link,
                day, run);
            std::printf("  adaptive  : %.1f h lifetime "
                        "(%zu passes, %zu events)\n",
                        adaptive_life.lifetime.hr(),
                        adaptive_life.tracePasses,
                        adaptive_life.events);
            std::printf("  static S  : %.1f h lifetime "
                        "(all-in-sensor)\n",
                        sensor_life.lifetime.hr());
            std::printf("  static A  : %.1f h lifetime "
                        "(all-in-aggregator)\n",
                        aggregator_life.lifetime.hr());
            adaptive_life.control.writeText(std::cout);
            if (!control_trace_path.empty()) {
                writeControlTraceFile(adaptive_life.control,
                                      control_trace_path);
                std::printf("  control trace: %s (%zu decisions)\n",
                            control_trace_path.c_str(),
                            adaptive_life.control.decisions.size());
            }
        }

        if (!trace_path.empty()) {
            const SimResult sim = simulateEvent(
                topology, eval.placement, link, faults);
            // When stats were requested alongside the trace, embed
            // the stable counters as flat Perfetto counter tracks.
            const bool with_stats =
                stats_table || !stats_out.empty();
            const StatsSnapshot snap =
                with_stats ? StatsRegistry::instance().snapshot()
                           : StatsSnapshot{};
            writeChromeTraceFile(sim, topology, eval.placement,
                                 trace_path,
                                 with_stats ? &snap : nullptr);
            std::printf("  trace     : %s (%zu transfers, "
                        "completion %.3f ms)\n",
                        trace_path.c_str(), sim.transfers,
                        sim.completion.ms());
        }
        emitStats(stats_table, stats_out);
        return 0;
    } catch (const FatalError &error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
}
